"""The campaign service: a long-running experiment server.

:class:`CampaignServer` turns the campaign engine into a daemon: an
asyncio HTTP/1.1 + WebSocket listener (stdlib only, see
:mod:`~repro.service.protocol`) running in its own thread, executing
each submitted campaign or sharded sweep on the existing scheduler in
a dedicated worker thread against the server's persistent result
store.

REST surface (all JSON, one request per connection):

========  ===============================  =================================
Method    Path                             Meaning
========  ===============================  =================================
POST      ``/campaigns``                   submit a spec, get a run id
GET       ``/campaigns``                   list runs (live + stored)
GET       ``/campaigns/{id}``              one run's status + summary
GET       ``/campaigns/{id}/points``       page merged sweep points
DELETE    ``/campaigns/{id}``              cooperative cancel
GET       ``/campaigns/{id}/events``       WebSocket event stream
GET       ``/healthz``                     liveness + hub counters
========  ===============================  =================================

Every run publishes its scheduler events on a private
:class:`~repro.runner.events.EventBus` with two subscribers wired in:
a JSONL sidecar writer (one :func:`~repro.runner.events.event_to_json`
line per event — the stream of record) and a thread-safe bridge into
the :class:`~repro.service.hub.EventHub`, which fans the same
envelopes out to WebSocket watchers.  A WS text frame's payload is the
exact canonical JSON line the sidecar holds, so a client transcript
can be diffed against the sidecar byte for byte; ``?after_seq=N``
replays from the hub log (live runs) or the sidecar (finished runs),
which also makes reconnects and server restarts resumable.

The store stays the source of truth: each run writes a
``service.run/<run_id>`` record (schema :data:`RUN_SCHEMA`) at submit
and again at exit, so a restarted server re-lists every previously
finished run with nothing but the store file.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import ConfigurationError, ReproError
from ..faults import ACTION_DROP, fault_site
from ..runner.campaign import Campaign, run_campaign
from ..runner.events import Event, EventBus, event_from_json, event_to_json
from ..runner.jobs import json_safe
from ..runner.sharding import (
    MERGE_TARGET,
    SHARD_TARGET,
    collect_points,
    sharded_sweep_campaign,
)
from ..runner.store import ResultStore
from ..telemetry import RunCapture, metrics
from . import protocol
from .hub import DEFAULT_QUEUE_SIZE, EventHub, STREAM_END, Subscription

#: Schema tag of the per-run store records the service appends.
RUN_SCHEMA = "repro.campaign-run/1"

#: Content-key prefix of those records (a query surface, like the
#: sweep block keys — never a cache entry for a schedulable job).
RUN_KEY_PREFIX = "service.run/"

#: Run lifecycle states.
STATE_PENDING = "pending"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"
STATE_CANCELLED = "cancelled"
#: Reported (never stored) for runs whose server died mid-flight.
STATE_INTERRUPTED = "interrupted"

TERMINAL_STATES = (STATE_DONE, STATE_FAILED, STATE_CANCELLED)

#: Spec kinds :func:`build_campaign` accepts.
KIND_SWEEP = "sweep"
KIND_CAMPAIGN = "campaign"

#: Default page size of ``GET /campaigns/{id}/points``.
POINTS_PAGE = 10_000


def run_key(run_id: str) -> str:
    """The store content key of one run's service record."""
    return RUN_KEY_PREFIX + run_id


def new_service_run_id() -> str:
    """A sortable, collision-free run id (UTC stamp + random suffix).

    :func:`~repro.telemetry.new_run_id` is pid-suffixed, which can
    collide for two submissions inside one second of one server —
    hence the random tail.
    """
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{uuid.uuid4().hex[:8]}"


def build_campaign(
    spec: Mapping[str, Any],
    store_path: str,
    store_backend: str | None = None,
) -> Campaign:
    """A :class:`Campaign` from one submitted JSON spec.

    Two spec kinds:

    * ``{"kind": "sweep", "name", "target", "parameter", "values",
      "shards"?, "common"?, "batch"?, "flush_chunk"?, "codec"?}`` —
      one sharded sweep (``values`` is an explicit list or a grid
      descriptor mapping);
    * ``{"kind": "campaign", "name", "specs": [{"kind": "call"|
      "experiment", ...}]}`` — an explicit job batch, mirroring the
      :class:`~repro.runner.campaign.Campaign` builder methods.

    Deterministic: the same spec always rebuilds the same campaign
    (same content keys), which is what lets a restarted server page a
    finished sweep's points from nothing but the stored spec.
    """
    if not isinstance(spec, Mapping):
        raise ConfigurationError("campaign spec must be a JSON object")
    kind = spec.get("kind", KIND_SWEEP)
    name = spec.get("name")
    if not name or not isinstance(name, str):
        raise ConfigurationError("campaign spec needs a string 'name'")
    if kind == KIND_SWEEP:
        for required in ("target", "parameter", "values"):
            if required not in spec:
                raise ConfigurationError(
                    f"sweep spec needs {required!r}"
                )
        return sharded_sweep_campaign(
            name,
            str(spec["target"]),
            str(spec["parameter"]),
            spec["values"],
            store_path=store_path,
            shards=int(spec.get("shards", 8)),
            store_backend=store_backend,
            common=spec.get("common"),
            retries=int(spec.get("retries", 0)),
            batch=bool(spec.get("batch", True)),
            flush_chunk=spec.get("flush_chunk"),
            codec=spec.get("codec"),
        )
    if kind == KIND_CAMPAIGN:
        jobs = spec.get("specs")
        if not isinstance(jobs, list) or not jobs:
            raise ConfigurationError(
                "campaign spec needs a non-empty 'specs' list"
            )
        campaign = Campaign(name)
        for entry in jobs:
            if not isinstance(entry, Mapping):
                raise ConfigurationError("each job spec must be an object")
            job_kind = entry.get("kind", "call")
            if job_kind == "experiment":
                campaign.experiment(
                    str(entry["experiment_id"]),
                    job_id=entry.get("job_id"),
                    after=entry.get("after", ()),
                    retries=int(entry.get("retries", 0)),
                    **dict(entry.get("params", {})),
                )
            elif job_kind == "call":
                campaign.call(
                    str(entry["job_id"]),
                    str(entry["target"]),
                    after=entry.get("after", ()),
                    retries=int(entry.get("retries", 0)),
                    **dict(entry.get("params", {})),
                )
            else:
                raise ConfigurationError(
                    f"unknown job kind {job_kind!r} "
                    "(expected 'call' or 'experiment')"
                )
        return campaign
    raise ConfigurationError(
        f"unknown spec kind {kind!r} (expected 'sweep' or 'campaign')"
    )


@dataclass
class _RunState:
    """Server-side state of one submitted run."""

    run_id: str
    spec: dict[str, Any]
    events_path: str
    state: str = STATE_PENDING
    created_ts: float = field(default_factory=time.time)
    finished_ts: float | None = None
    error: str | None = None
    counts: dict[str, int] = field(default_factory=dict)
    summary: dict[str, Any] | None = None
    cancel: threading.Event = field(default_factory=threading.Event)
    thread: threading.Thread | None = None

    def record_value(self) -> dict[str, Any]:
        """The JSON value of this run's ``service.run/`` store record."""
        return {
            "schema": RUN_SCHEMA,
            "run_id": self.run_id,
            "state": self.state,
            "spec": self.spec,
            "created_ts": self.created_ts,
            "finished_ts": self.finished_ts,
            "error": self.error,
            "counts": self.counts,
            "summary": json_safe(self.summary)
            if self.summary is not None
            else None,
            "events_path": self.events_path,
        }


class CampaignServer:
    """Long-running campaign service bound to one result store.

    Parameters
    ----------
    store_path:
        The persistent :class:`~repro.runner.store.ResultStore` every
        run executes against — and the restart source of truth.
    host / port:
        Listen address; ``port=0`` binds an ephemeral port (read the
        bound one from :attr:`port` after :meth:`start`).
    store_backend:
        Store backend override, as everywhere else.
    jobs:
        Default worker processes per run (a spec's ``"jobs"`` wins).
    executor:
        Default execution backend kind per run (``"serial"``,
        ``"pool"``, or ``"fleet"``; a spec's ``"executor"`` wins).
        ``None`` resolves from ``REPRO_EXECUTOR`` then the jobs count.
    runs_dir:
        Directory of per-run event sidecars
        (``<runs_dir>/<run_id>.jsonl``); default ``store_path +
        ".events"``.
    trace_dir:
        When set, each finished run exports a Chrome trace to
        ``<trace_dir>/<run_id>.trace.json``.
    queue_size:
        Per-WebSocket-client queue bound (see
        :class:`~repro.service.hub.EventHub`).
    drain_grace_s:
        How long :meth:`stop` lets in-flight WebSocket streams finish
        naturally (deliver their ``STREAM_END`` tail and close frame)
        before cancelling them.  Run threads are always joined first,
        so run records and sidecars are flushed regardless.
    """

    def __init__(
        self,
        store_path: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        store_backend: str | None = None,
        jobs: int = 1,
        executor: str | None = None,
        runs_dir: str | None = None,
        trace_dir: str | None = None,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        drain_grace_s: float = 2.0,
    ) -> None:
        self.store_path = str(store_path)
        self.store_backend = store_backend
        self.host = host
        self.port = port
        self.jobs = jobs
        self.executor = executor
        self.runs_dir = runs_dir or self.store_path + ".events"
        self.trace_dir = trace_dir
        self.drain_grace_s = drain_grace_s
        self.hub = EventHub(queue_size=queue_size)
        self._runs: dict[str, _RunState] = {}
        self._runs_lock = threading.Lock()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._stop: asyncio.Event | None = None
        self._connections: set[asyncio.Task[None]] = set()
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "CampaignServer":
        """Bind and serve on a background thread; returns self."""
        if self._thread is not None:
            raise ReproError("server already started")
        os.makedirs(self.runs_dir, exist_ok=True)
        if self.trace_dir:
            os.makedirs(self.trace_dir, exist_ok=True)
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-service", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            self._thread = None
            raise self._startup_error
        return self

    def stop(self) -> None:
        """Cancel every live run, close the listener, join the thread.

        Idempotent: an explicit ``stop()`` inside a ``with`` block (or
        any repeated call) is a no-op the second time around.
        """
        with self._runs_lock:
            runs = list(self._runs.values())
        for run in runs:
            run.cancel.set()
        for run in runs:
            if run.thread is not None:
                run.thread.join()
        if self._loop is not None and self._stop is not None:
            if not self._loop.is_closed():
                self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._loop = None
        self._stop = None

    def __enter__(self) -> "CampaignServer":
        # idempotent so `with api.serve(...)` (already started) works
        if self._thread is None:
            return self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as error:  # noqa: BLE001 - surfaced in start()
            if not self._ready.is_set():
                self._startup_error = error
                self._ready.set()
            else:
                raise

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._connections: set[asyncio.Task[None]] = set()
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        try:
            self.port = server.sockets[0].getsockname()[1]
            self._ready.set()
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            # Graceful drain: stop() has already joined every run
            # thread, so each live channel has its STREAM_END queued
            # and each sidecar/run record is on disk.  Give in-flight
            # streams a grace window to deliver that tail and their
            # close frame before cancelling whatever remains (idle
            # keep-alive connections, pathologically slow clients).
            if self._connections and self.drain_grace_s > 0:
                await asyncio.wait(
                    self._connections, timeout=self.drain_grace_s
                )
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.wait(self._connections, timeout=2.0)

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            try:
                request = await protocol.read_request(reader.read)
            except protocol.ProtocolError as error:
                writer.write(protocol.json_error(400, str(error)))
                await writer.drain()
                return
            if request is None:
                return
            metrics().count("service.requests")
            metrics().count(f"service.requests.{request.method.lower()}")
            if request.wants_websocket:
                await self._handle_websocket(request, reader, writer)
                return
            response = await self._route(request)
            writer.write(response)
            await writer.drain()
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            BrokenPipeError,
        ):
            pass
        except asyncio.CancelledError:
            # Loop shutdown: end quietly (the transport closes below).
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            with contextlib.suppress(Exception):
                writer.close()

    async def _route(self, request: protocol.HttpRequest) -> bytes:
        parts = [p for p in request.path.split("/") if p]
        try:
            if request.path == "/healthz" and request.method == "GET":
                return self._healthz()
            if parts[:1] == ["campaigns"]:
                if len(parts) == 1:
                    if request.method == "POST":
                        return await self._submit(request)
                    if request.method == "GET":
                        return await self._list_runs()
                    return protocol.json_error(405, "use GET or POST")
                run_id = parts[1]
                if len(parts) == 2:
                    if request.method == "GET":
                        return await self._status(run_id)
                    if request.method == "DELETE":
                        return self._cancel(run_id)
                    return protocol.json_error(405, "use GET or DELETE")
                if len(parts) == 3 and parts[2] == "points":
                    if request.method != "GET":
                        return protocol.json_error(405, "use GET")
                    return await self._points(run_id, request)
                if len(parts) == 3 and parts[2] == "events":
                    return protocol.json_error(
                        426, "events endpoint requires a WebSocket upgrade"
                    )
            return protocol.json_error(404, f"no route {request.path!r}")
        except ConfigurationError as error:
            return protocol.json_error(400, str(error))
        except ReproError as error:
            return protocol.json_error(500, str(error))

    # -- REST endpoints ----------------------------------------------------

    def _healthz(self) -> bytes:
        with self._runs_lock:
            live = sum(
                1
                for run in self._runs.values()
                if run.state in (STATE_PENDING, STATE_RUNNING)
            )
        return protocol.response_bytes(
            200,
            {
                "status": "ok",
                "store": self.store_path,
                "live_runs": live,
                "hub": self.hub.stats(),
            },
        )

    async def _submit(self, request: protocol.HttpRequest) -> bytes:
        try:
            spec = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return protocol.json_error(400, "body must be a JSON object")
        # Validate eagerly: a bad spec fails the POST, not the run.
        build_campaign(spec, self.store_path, self.store_backend)
        run_id = new_service_run_id()
        run = _RunState(
            run_id=run_id,
            spec=dict(spec),
            events_path=os.path.join(self.runs_dir, f"{run_id}.jsonl"),
        )
        with self._runs_lock:
            self._runs[run_id] = run
        self.hub.open(run_id)
        await asyncio.to_thread(self._write_run_record, run)
        run.thread = threading.Thread(
            target=self._execute_run,
            args=(run,),
            name=f"repro-run-{run_id}",
            daemon=True,
        )
        run.thread.start()
        metrics().count("service.runs.submitted")
        return protocol.response_bytes(
            201, {"run_id": run_id, "state": run.state}
        )

    async def _list_runs(self) -> bytes:
        stored = await asyncio.to_thread(self._stored_runs)
        with self._runs_lock:
            live = {
                run_id: self._status_dict(run)
                for run_id, run in self._runs.items()
            }
        merged = {**stored, **live}
        runs = [merged[run_id] for run_id in sorted(merged)]
        return protocol.response_bytes(200, {"runs": runs})

    async def _status(self, run_id: str) -> bytes:
        with self._runs_lock:
            run = self._runs.get(run_id)
            status = self._status_dict(run) if run is not None else None
        if status is None:
            stored = await asyncio.to_thread(self._stored_runs)
            status = stored.get(run_id)
        if status is None:
            return protocol.json_error(404, f"no run {run_id!r}")
        return protocol.response_bytes(200, status)

    def _cancel(self, run_id: str) -> bytes:
        with self._runs_lock:
            run = self._runs.get(run_id)
        if run is None:
            return protocol.json_error(404, f"no run {run_id!r}")
        if run.state in TERMINAL_STATES:
            return protocol.response_bytes(
                200, {"run_id": run_id, "state": run.state}
            )
        run.cancel.set()
        metrics().count("service.runs.cancelled")
        return protocol.response_bytes(
            202, {"run_id": run_id, "state": run.state, "cancelling": True}
        )

    async def _points(
        self, run_id: str, request: protocol.HttpRequest
    ) -> bytes:
        try:
            offset = int(request.query.get("offset", "0"))
            limit = int(request.query.get("limit", str(POINTS_PAGE)))
        except ValueError:
            return protocol.json_error(400, "offset/limit must be integers")
        if offset < 0 or limit < 1:
            return protocol.json_error(
                400, "need offset >= 0 and limit >= 1"
            )
        spec = await self._spec_for(run_id)
        if spec is None:
            return protocol.json_error(404, f"no run {run_id!r}")
        if spec.get("kind", KIND_SWEEP) != KIND_SWEEP:
            return protocol.json_error(
                400, f"run {run_id!r} is not a sweep; no point series"
            )
        page = await asyncio.to_thread(
            self._read_points, spec, offset, limit
        )
        page["run_id"] = run_id
        return protocol.response_bytes(200, page)

    # -- run execution (worker thread) -------------------------------------

    def _execute_run(self, run: _RunState) -> None:
        bus = EventBus(run_id=run.run_id)
        capture: RunCapture | None = None
        if self.trace_dir:
            capture = RunCapture(run_id=run.run_id)
            bus.subscribe(capture)
        loop = self._loop
        assert loop is not None

        def bridge(event: Event) -> None:
            loop.call_soon_threadsafe(self.hub.dispatch, run.run_id, event)

        run.state = STATE_RUNNING
        try:
            campaign = build_campaign(
                run.spec, self.store_path, self.store_backend
            )
            with open(
                run.events_path, "a", buffering=1, encoding="utf-8"
            ) as sidecar:

                def persist(event: Event) -> None:
                    sidecar.write(event_to_json(event) + "\n")

                bus.subscribe(persist)
                bus.subscribe(bridge)
                result = run_campaign(
                    campaign,
                    jobs=int(run.spec.get("jobs", self.jobs)),
                    store_path=self.store_path,
                    store_backend=self.store_backend,
                    cache_preload="specs",
                    strict=False,
                    bus=bus,
                    cancel=run.cancel.is_set,
                    executor=run.spec.get("executor", self.executor),
                )
            run.counts = result.status_counts()
            if run.cancel.is_set():
                run.state = STATE_CANCELLED
            elif result.ok:
                run.state = STATE_DONE
            else:
                run.state = STATE_FAILED
                failures = result.failures
                run.error = (
                    f"{len(failures)} job(s) did not succeed "
                    f"(first: {result.results[failures[0]].error})"
                )
            merge = result.results.get(f"{campaign.name}/merge")
            if merge is not None and merge.succeeded:
                run.summary = merge.value
        except BaseException as error:  # noqa: BLE001 - recorded, not lost
            run.state = STATE_FAILED
            run.error = f"{type(error).__name__}: {error}"
        finally:
            run.finished_ts = time.time()
            try:
                self._write_run_record(run)
            except Exception as error:  # noqa: BLE001
                run.error = (run.error or "") + (
                    f"; run record write failed: {error}"
                )
            if capture is not None:
                with contextlib.suppress(Exception):
                    capture.export(
                        trace=os.path.join(
                            self.trace_dir or ".",
                            f"{run.run_id}.trace.json",
                        )
                    )
            loop.call_soon_threadsafe(self.hub.finish, run.run_id)
            metrics().count(f"service.runs.{run.state}")

    # -- store access (always short-lived, thread-local) --------------------

    def _write_run_record(self, run: _RunState) -> None:
        store = ResultStore(self.store_path, backend=self.store_backend)
        try:
            store.append(
                {
                    "key": run_key(run.run_id),
                    "job_id": f"service/{run.run_id}",
                    "status": "ok",
                    "value": run.record_value(),
                }
            )
        finally:
            store.close()

    def _stored_runs(self) -> dict[str, dict[str, Any]]:
        """Latest service record per run id, straight from the store."""
        if not os.path.exists(self.store_path):
            return {}
        store = ResultStore(self.store_path, backend=self.store_backend)
        runs: dict[str, dict[str, Any]] = {}
        try:
            for record in store.iter_latest_by_key("ok"):
                key = record.get("key", "")
                if not key.startswith(RUN_KEY_PREFIX):
                    continue
                value = dict(record.get("value") or {})
                if value.get("schema") != RUN_SCHEMA:
                    continue
                # A non-terminal stored state with no live run behind it
                # means the serving process died mid-run.
                if value.get("state") not in TERMINAL_STATES:
                    with self._runs_lock:
                        live = value.get("run_id") in self._runs
                    if not live:
                        value["state"] = STATE_INTERRUPTED
                runs[value.get("run_id", key[len(RUN_KEY_PREFIX):])] = value
        finally:
            store.close()
        return runs

    def _status_dict(self, run: _RunState) -> dict[str, Any]:
        status = run.record_value()
        status["last_seq"] = self.hub.last_seq(run.run_id)
        return status

    async def _spec_for(self, run_id: str) -> dict[str, Any] | None:
        with self._runs_lock:
            run = self._runs.get(run_id)
            if run is not None:
                return run.spec
        stored = await asyncio.to_thread(self._stored_runs)
        value = stored.get(run_id)
        return dict(value["spec"]) if value and value.get("spec") else None

    def _read_points(
        self, spec: Mapping[str, Any], offset: int, limit: int
    ) -> dict[str, Any]:
        """One page of a merged sweep's points (worker-thread body).

        Walks the sweep's columnar block records in order, decoding
        only the blocks that overlap ``[offset, offset + limit)``;
        falls back to :func:`~repro.runner.sharding.collect_points`
        for stores merged with ``codec="json"`` (no block records).
        """
        import numpy as np

        from ..runner import codec as _codec
        from ..runner.sharding import block_key

        def listed(column: Any) -> list[Any]:
            # json_safe degrades unknown types (ndarrays included) to
            # repr; decode columns need a real element list.
            if isinstance(column, np.ndarray):
                return column.tolist()
            return list(json_safe(column))

        campaign = build_campaign(spec, self.store_path, self.store_backend)
        shard_keys = [
            s.key for s in campaign.specs if s.target == SHARD_TARGET
        ]
        merges = [s for s in campaign.specs if s.target == MERGE_TARGET]
        if not merges:
            raise ConfigurationError("spec built no merge job")
        params = merges[0].params_dict()
        target = params["sweep_target"]
        parameter = params["parameter"]
        common = params.get("common") or {}
        store = ResultStore(self.store_path, backend=self.store_backend)
        values: list[Any] = []
        columns: dict[str, list[Any]] = {}
        points_kind = ""
        seen = 0
        done = False
        try:
            index = 0
            while len(values) < limit:
                record = store.get(
                    block_key(target, parameter, shard_keys, index, common)
                )
                if record is None:
                    done = True
                    break
                index += 1
                block_values, block_columns, points_kind = (
                    _codec.unpack_columns(record["value"])
                )
                size = len(block_values)
                lo = max(0, offset - seen)
                seen += size
                if lo >= size:
                    continue
                hi = min(size, lo + (limit - len(values)))
                values.extend(listed(block_values[lo:hi]))
                for name, column in block_columns.items():
                    columns.setdefault(name, []).extend(
                        listed(column[lo:hi])
                    )
            if not values and done and seen == 0:
                # No block records at all: legacy per-point store.
                all_values, all_points = collect_points(
                    self.store_path, campaign, self.store_backend
                )
                page_values = all_values[offset : offset + limit]
                page_points = all_points[offset : offset + limit]
                done = offset + limit >= len(all_values)
                return {
                    "offset": offset,
                    "count": len(page_values),
                    "values": json_safe(page_values),
                    "points": json_safe(page_points),
                    "done": done,
                }
        finally:
            store.close()
        return {
            "offset": offset,
            "count": len(values),
            "values": values,
            "columns": columns,
            "points_kind": points_kind,
            "done": done,
        }

    # -- WebSocket streaming -----------------------------------------------

    async def _handle_websocket(
        self,
        request: protocol.HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        parts = [p for p in request.path.split("/") if p]
        if (
            len(parts) != 3
            or parts[0] != "campaigns"
            or parts[2] != "events"
        ):
            writer.write(
                protocol.json_error(404, f"no WS route {request.path!r}")
            )
            await writer.drain()
            return
        key = request.header("sec-websocket-key")
        if not key:
            writer.write(
                protocol.json_error(400, "missing Sec-WebSocket-Key")
            )
            await writer.drain()
            return
        run_id = parts[1]
        try:
            after_seq = int(request.query.get("after_seq", "0"))
            throttle_s = float(request.query.get("throttle_s", "0"))
        except ValueError:
            writer.write(
                protocol.json_error(
                    400, "after_seq/throttle_s must be numeric"
                )
            )
            await writer.drain()
            return
        subscription = self.hub.subscribe(run_id, after_seq)
        replay: list[str] | None = None
        if subscription is None:
            # Not a live channel: a finished (possibly pre-restart) run
            # streams from its sidecar, the file the frames were
            # written next to in the first place.
            replay = await asyncio.to_thread(
                self._sidecar_lines, run_id, after_seq
            )
            if replay is None:
                writer.write(
                    protocol.json_error(404, f"no run {run_id!r}")
                )
                await writer.drain()
                return
        writer.write(protocol.handshake_response(key))
        await writer.drain()
        try:
            await self._stream_events(
                writer, reader, subscription, replay, throttle_s, run_id
            )
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            if subscription is not None and subscription.queue is not None:
                self.hub.unsubscribe(run_id, subscription.client_id)

    async def _stream_events(
        self,
        writer: asyncio.StreamWriter,
        reader: asyncio.StreamReader,
        subscription: Subscription | None,
        replay: list[str] | None,
        throttle_s: float,
        run_id: str,
    ) -> None:
        async def send_line(line: str) -> None:
            fired = fault_site("service.ws.send", run_id)
            if fired is not None and fired.action == ACTION_DROP:
                # Injected network partition: kill the transport with
                # no close frame, exactly what a yanked cable looks
                # like to the client (ServiceError 502 → reconnect).
                writer.transport.abort()
                raise ConnectionResetError(
                    f"injected WS drop for run {run_id}"
                )
            writer.write(protocol.text_frame(line))
            await writer.drain()
            if throttle_s > 0:
                # Documented test hook: a deliberately slow client.
                # Sleeping with the frame "in flight" lets the hub
                # queue fill deterministically regardless of kernel
                # socket buffering.
                await asyncio.sleep(throttle_s)

        client_gone = asyncio.ensure_future(self._drain_client(reader, writer))
        try:
            if replay is not None:
                for line in replay:
                    if client_gone.done():
                        return
                    await send_line(line)
            else:
                assert subscription is not None
                for event in subscription.backlog:
                    if client_gone.done():
                        return
                    await send_line(event_to_json(event))
                queue = subscription.queue
                while queue is not None and not client_gone.done():
                    getter = asyncio.ensure_future(queue.get())
                    await asyncio.wait(
                        {getter, client_gone},
                        return_when=asyncio.FIRST_COMPLETED,
                    )
                    if not getter.done():
                        getter.cancel()
                        return
                    item = getter.result()
                    if item is STREAM_END:
                        break
                    await send_line(event_to_json(item))
            writer.write(protocol.close_frame())
            await writer.drain()
        finally:
            client_gone.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await client_gone

    async def _drain_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Answer pings; return when the client closes or disconnects."""
        with contextlib.suppress(
            protocol.ProtocolError, ConnectionError, BrokenPipeError
        ):
            async for frame in protocol.iter_frames(reader.read):
                if frame.opcode == protocol.OP_PING:
                    writer.write(
                        protocol.encode_frame(protocol.OP_PONG, frame.payload)
                    )
                    await writer.drain()
                elif frame.opcode == protocol.OP_CLOSE:
                    return

    def _sidecar_lines(
        self, run_id: str, after_seq: int
    ) -> list[str] | None:
        """A finished run's sidecar lines with ``seq > after_seq``.

        ``None`` when this server's store knows no such run at all
        (a missing sidecar for a known run yields an empty replay).
        """
        path = os.path.join(self.runs_dir, f"{run_id}.jsonl")
        if not os.path.exists(path):
            known = self._stored_runs()
            return [] if run_id in known else None
        lines: list[str] = []
        with open(path, "r", encoding="utf-8") as handle:
            for raw in handle:
                line = raw.rstrip("\n")
                if not line:
                    continue
                try:
                    event = event_from_json(line)
                except ValueError:
                    continue
                if event.seq > after_seq:
                    lines.append(line)
        return lines


def serve_forever(server: CampaignServer) -> None:
    """Run a started server until interrupted (the CLI entry body)."""
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
