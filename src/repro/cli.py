"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands
-----------
* ``repro list`` — show all registered experiments,
* ``repro run <id> [...]`` — regenerate one or more paper artefacts
  (``--jobs N`` fans them out over worker processes),
* ``repro run all`` — regenerate everything,
* ``repro campaign [<id> ...] --jobs 4 --store results.jsonl`` — run a
  batch through the orchestration engine with caching/resume
  (``--store-backend sqlite`` for indexed million-record histories),
* ``repro sweep <target> --parameter rate_bps --min 32e3 --max 4096e3
  --points 1000000 --shards 16 --jobs 4 --store sweep.sqlite`` — run
  one importable batch target over a grid as a sharded, resumable,
  memory-bounded campaign,
* ``repro serve --store results.jsonl --port 8321`` — run the
  long-lived campaign service: submit specs over HTTP, stream live
  runs over WebSocket, page merged sweep points, cancel with DELETE,
* ``repro campaign --watch http://host:8321`` — submit the same batch
  to a running service instead and stream its progress into the local
  TUI (``--run ID`` attaches to an existing run),
* ``repro store info|compact|migrate`` — inspect, compact (latest
  record per key), or convert a result store between the JSONL and
  SQLite backends (``info --timings`` adds backend call latencies),
* ``repro trace export <sidecar>`` — convert a telemetry sidecar
  (``--telemetry`` / ``$REPRO_TELEMETRY``) into ``chrome://tracing``
  JSON; ``repro telemetry summary <sidecar>`` prints the per-phase
  metric rollup instead,
* ``repro dimension --rate 1024 --energy 0.8 --capacity 0.88 --lifetime 7``
  — answer one §IV.C design question directly,
* ``repro simulate --rate 1024 --buffer-kb 20 --duration 60`` — run the
  DES pipeline on one operating point and print the report.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from . import units
from .config import DesignGoal, ibm_mems_prototype, table1_workload
from .core.dimensioning import BufferDimensioner
from .errors import ReproError
from .experiments import (
    list_experiments,
    run_experiment,
    run_experiments,
    validate_experiment_ids,
)
from .streaming.pipeline import simulate_always_on, simulate_streaming
from .streaming.stats import compare_with_model


def _jobs_default() -> int:
    """``--jobs`` default: ``$REPRO_JOBS``, else serial."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def _add_run_options(
    parser: argparse.ArgumentParser,
    *,
    jobs: bool = True,
    store: bool = False,
    store_required: bool = False,
    codec: bool = False,
    telemetry: bool = True,
    trace_help: str | None = None,
) -> None:
    """The one shared option group every run-shaped command uses.

    All commands spell these flags identically, and each has an
    environment fallback so services and CI set them once:
    ``--jobs``/``$REPRO_JOBS``, ``--store``/``$REPRO_STORE``,
    ``--store-backend``/``$REPRO_STORE_BACKEND``,
    ``--codec``/``$REPRO_POINT_CODEC``, ``--trace``/``$REPRO_TRACE``,
    ``--telemetry``/``$REPRO_TELEMETRY``.
    """
    if jobs:
        parser.add_argument(
            "--jobs", type=int, default=_jobs_default(), metavar="N",
            help=(
                "worker processes (default: $REPRO_JOBS, else 1 = serial)"
            ),
        )
        parser.add_argument(
            "--executor", choices=("serial", "pool", "fleet"),
            default=os.environ.get("REPRO_EXECUTOR") or None,
            help=(
                "execution backend: 'serial' runs in-process, 'pool' "
                "fans out over a process pool, 'fleet' runs independent "
                "lease-tracked worker processes that survive crashes "
                "(default: $REPRO_EXECUTOR, else serial/pool by --jobs)"
            ),
        )
    if store:
        env_store = os.environ.get("REPRO_STORE") or None
        parser.add_argument(
            "--store", metavar="FILE", default=env_store,
            required=store_required and env_store is None,
            help=(
                "persistent result store (default: $REPRO_STORE)"
                + ("" if store_required else "; enables cached re-runs")
            ),
        )
        parser.add_argument(
            "--store-backend", choices=("jsonl", "sqlite"), default=None,
            help=(
                "persistence backend for --store (default: auto-detect "
                "existing format, then $REPRO_STORE_BACKEND, then the "
                "path extension)"
            ),
        )
    if codec:
        parser.add_argument(
            "--codec", choices=("columnar", "json"), default=None,
            help=(
                "point payload codec: 'columnar' packs results as binary "
                "column blocks, 'json' keeps one JSON record per point "
                "(default: $REPRO_POINT_CODEC, then columnar)"
            ),
        )
    if telemetry:
        parser.add_argument(
            "--trace", metavar="FILE", default=None,
            help=trace_help or (
                "write a Chrome trace-event file for this run "
                "(default: $REPRO_TRACE)"
            ),
        )
        parser.add_argument(
            "--telemetry", metavar="FILE", default=None,
            dest="telemetry_file",
            help=(
                "write a JSONL telemetry sidecar for this run "
                "(default: $REPRO_TELEMETRY when it names a path)"
            ),
        )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Buffering Implications for the Design Space "
            "of Streaming MEMS Storage' (DATE 2011)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered experiments")

    run_parser = subparsers.add_parser(
        "run", help="run one or more experiments by id (or 'all')"
    )
    run_parser.add_argument("experiments", nargs="+", metavar="EXPERIMENT")
    run_parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="also write the rendered results to FILE",
    )
    _add_run_options(run_parser)

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="run a batch through the orchestration engine",
        description=(
            "Run experiments as one campaign: parallel workers, "
            "retry-on-failure, and (with --store) content-addressed "
            "caching that makes re-runs and resumption near-instant."
        ),
    )
    campaign_parser.add_argument(
        "experiments", nargs="*", metavar="EXPERIMENT", default=[],
        help="experiment ids (default: every registered experiment)",
    )
    _add_run_options(campaign_parser, store=True)
    campaign_parser.add_argument(
        "--retries", type=int, default=0, metavar="R",
        help="retry budget per failing job (default 0)",
    )
    campaign_parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-job progress lines",
    )
    campaign_parser.add_argument(
        "--watch", metavar="URL", default=None,
        help=(
            "submit to a running campaign service at URL and stream "
            "its live progress instead of executing locally"
        ),
    )
    campaign_parser.add_argument(
        "--run", metavar="RUN_ID", default=None, dest="watch_run",
        help=(
            "with --watch: attach to an existing service run instead "
            "of submitting a new one"
        ),
    )

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run a sharded, resumable grid sweep through the store",
        description=(
            "Evaluate one importable 'pkg.module:function' batch target "
            "over a parameter grid as a sharded campaign: content-hash-"
            "keyed shard jobs fan out over worker processes, a streaming "
            "merge files one record per grid point into the store in "
            "bounded batches, and interrupted sweeps resume from "
            "per-shard cache."
        ),
    )
    sweep_parser.add_argument(
        "target", metavar="TARGET",
        help="importable 'pkg.module:function' batch sweep target",
    )
    sweep_parser.add_argument(
        "--parameter", required=True, metavar="NAME",
        help="name of the swept keyword argument",
    )
    sweep_parser.add_argument(
        "--values", default=None, metavar="V1,V2,...",
        help="explicit comma-separated grid values",
    )
    sweep_parser.add_argument(
        "--min", type=float, default=None, dest="grid_min",
        help="grid start (with --max/--points)",
    )
    sweep_parser.add_argument(
        "--max", type=float, default=None, dest="grid_max",
        help="grid end (with --min/--points)",
    )
    sweep_parser.add_argument(
        "--points", type=int, default=101, metavar="N",
        help="grid size for --min/--max (default 101)",
    )
    sweep_parser.add_argument(
        "--linear", action="store_true",
        help="space the --min/--max grid linearly (default: log)",
    )
    sweep_parser.add_argument(
        "--shards", type=int, default=8, metavar="N",
        help="contiguous grid shards, one cached job each (default 8)",
    )
    _add_run_options(
        sweep_parser, store=True, store_required=True, codec=True
    )
    sweep_parser.add_argument(
        "--name", default="sweep", metavar="NAME",
        help="campaign name prefix for the shard/merge jobs",
    )
    sweep_parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-job progress lines",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the long-lived campaign service (HTTP + WebSocket)",
        description=(
            "Serve campaigns over HTTP: POST specs to /campaigns, "
            "watch live runs over WebSocket at /campaigns/{id}/events, "
            "page merged sweep points, and cancel with DELETE.  The "
            "store is the source of truth — restarting the server "
            "re-lists every finished run."
        ),
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="listen address (default 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=8321, metavar="PORT",
        help="listen port; 0 binds an ephemeral one (default 8321)",
    )
    _add_run_options(
        serve_parser,
        store=True,
        store_required=True,
        telemetry=False,
    )
    serve_parser.add_argument(
        "--runs-dir", metavar="DIR", default=None,
        help=(
            "directory of per-run event sidecars "
            "(default: <store> + '.events')"
        ),
    )
    serve_parser.add_argument(
        "--trace", metavar="DIR", default=None, dest="trace_dir",
        help=(
            "export a Chrome trace per finished run into DIR "
            "(default: $REPRO_TRACE_DIR)"
        ),
    )

    worker_parser = subparsers.add_parser(
        "worker",
        help="run one fleet worker task and exit (internal)",
        description=(
            "Internal entry point spawned by the fleet execution "
            "backend as 'repro worker --task FILE': load the pickled "
            "task, heartbeat its lease from a daemon thread, run the "
            "single job attempt, and commit the result file "
            "atomically.  Not intended for interactive use."
        ),
    )
    worker_parser.add_argument(
        "--task", required=True, metavar="FILE",
        help="pickled task file written by the fleet supervisor",
    )

    store_parser = subparsers.add_parser(
        "store",
        help="inspect and maintain campaign result stores",
        description=(
            "Maintenance for persistent result stores: show what a "
            "store holds, compact superseded history, or migrate "
            "between the JSONL and SQLite backends."
        ),
    )
    store_sub = store_parser.add_subparsers(dest="store_command",
                                            required=True)

    info_parser = store_sub.add_parser(
        "info", help="summarise a store's backend, records, and versions"
    )
    info_parser.add_argument("path", metavar="STORE")
    info_parser.add_argument(
        "--backend", choices=("jsonl", "sqlite"), default=None,
        help="force the backend instead of auto-detecting",
    )
    info_parser.add_argument(
        "--timings", action="store_true",
        help="also report backend call latencies for the info scan",
    )

    compact_parser = store_sub.add_parser(
        "compact",
        help="drop superseded records (keep latest per key)",
        description=(
            "Rewrite the store keeping, per content key, the latest "
            "record plus the latest 'ok' record.  Cache lookups answer "
            "identically before and after; superseded history is gone."
        ),
    )
    compact_parser.add_argument("path", metavar="STORE")
    compact_parser.add_argument(
        "--backend", choices=("jsonl", "sqlite"), default=None,
        help="force the backend instead of auto-detecting",
    )

    verify_parser = store_sub.add_parser(
        "verify",
        help="integrity-scan a store's checksums (exit 1 on damage)",
        description=(
            "Read-only full-history checksum pass.  Reports verified, "
            "legacy-unchecked, corrupt (per payload kind), and "
            "unreadable record counts.  Damaged records stay "
            "quarantined in place — re-running the campaign recomputes "
            "them.  Exits 1 when any damage is found."
        ),
    )
    verify_parser.add_argument("path", metavar="STORE")
    verify_parser.add_argument(
        "--backend", choices=("jsonl", "sqlite"), default=None,
        help="force the backend instead of auto-detecting",
    )

    migrate_parser = store_sub.add_parser(
        "migrate",
        help="copy a store into a fresh store (e.g. JSONL -> SQLite)",
        description=(
            "Copy every record, in order and verbatim (provenance "
            "stamps included), into a new store.  The destination "
            "backend follows its extension, defaulting to the other "
            "backend, so 'repro store migrate r.jsonl r.sqlite' "
            "converts to SQLite."
        ),
    )
    migrate_parser.add_argument("source", metavar="SRC")
    migrate_parser.add_argument("destination", metavar="DST")
    migrate_parser.add_argument(
        "--src-backend", choices=("jsonl", "sqlite"), default=None,
        help="force the source backend instead of auto-detecting",
    )
    migrate_parser.add_argument(
        "--dst-backend", choices=("jsonl", "sqlite"), default=None,
        help="force the destination backend",
    )

    trace_parser = subparsers.add_parser(
        "trace",
        help="export recorded telemetry as a Chrome trace",
        description=(
            "Work with the Chrome trace-event form of a run's "
            "telemetry.  Load the exported file in chrome://tracing or "
            "https://ui.perfetto.dev to see job, shard, merge, and "
            "store-flush spans on per-worker timelines."
        ),
    )
    trace_sub = trace_parser.add_subparsers(
        dest="trace_command", required=True
    )
    trace_export = trace_sub.add_parser(
        "export",
        help="convert a telemetry sidecar into chrome://tracing JSON",
        description=(
            "Convert the JSONL telemetry sidecar written by "
            "--telemetry (or $REPRO_TELEMETRY) into Chrome trace-event "
            "JSON — spans become duration events on one lane per "
            "worker pid, bus events become instants."
        ),
    )
    trace_export.add_argument(
        "run", metavar="SIDECAR",
        help="telemetry sidecar written by --telemetry",
    )
    trace_export.add_argument(
        "--output", metavar="FILE", default=None,
        help="trace file to write (default: SIDECAR + '.trace.json')",
    )

    telemetry_parser = subparsers.add_parser(
        "telemetry",
        help="summarise a run's recorded telemetry",
    )
    telemetry_sub = telemetry_parser.add_subparsers(
        dest="telemetry_command", required=True
    )
    telemetry_summary = telemetry_sub.add_parser(
        "summary",
        help="print the per-phase rollup of a telemetry sidecar",
        description=(
            "Read a JSONL telemetry sidecar and print its rollup: "
            "event counts, span timings by phase, and the merged "
            "cross-worker counter/gauge/histogram snapshot."
        ),
    )
    telemetry_summary.add_argument(
        "run", metavar="SIDECAR",
        help="telemetry sidecar written by --telemetry",
    )

    kernels_parser = subparsers.add_parser(
        "kernels",
        help="inspect the tiered hot-kernel engine",
        description=(
            "The batch engine's innermost loops dispatch through a "
            "tiered kernel registry (scalar reference / numpy "
            "vectorised / numba native).  REPRO_KERNELS selects the "
            "tier; 'auto' probes numba once and falls back to numpy."
        ),
    )
    kernels_sub = kernels_parser.add_subparsers(
        dest="kernels_command", required=True
    )
    kernels_sub.add_parser(
        "info",
        help="show the active tier, native availability, and JIT cache",
        description=(
            "Report the requested and resolved kernel tiers, whether "
            "the native (numba) tier is importable (and why not, when "
            "it is not), the pinned JIT cache directory with a "
            "file/byte census, and every registered kernel with its "
            "available tiers."
        ),
    )

    dim_parser = subparsers.add_parser(
        "dimension", help="answer a §IV.C design question"
    )
    dim_parser.add_argument(
        "--rate", type=float, required=True, help="streaming rate in kbps"
    )
    dim_parser.add_argument(
        "--energy", type=float, default=0.80,
        help="energy-saving goal as a fraction (default 0.80)",
    )
    dim_parser.add_argument(
        "--capacity", type=float, default=0.88,
        help="capacity-utilisation goal as a fraction (default 0.88)",
    )
    dim_parser.add_argument(
        "--lifetime", type=float, default=7.0,
        help="lifetime goal in years (default 7)",
    )
    dim_parser.add_argument(
        "--springs", type=float, default=1e8,
        help="springs duty-cycle rating (default 1e8)",
    )
    dim_parser.add_argument(
        "--probe-cycles", type=float, default=100.0,
        help="probe write-cycle rating (default 100)",
    )

    plot_parser = subparsers.add_parser(
        "plot", help="ASCII-plot a Figure 3 style design-space panel"
    )
    plot_parser.add_argument(
        "--energy", type=float, default=0.80,
        help="energy-saving goal as a fraction (default 0.80)",
    )
    plot_parser.add_argument(
        "--capacity", type=float, default=0.88,
        help="capacity-utilisation goal as a fraction (default 0.88)",
    )
    plot_parser.add_argument(
        "--lifetime", type=float, default=7.0,
        help="lifetime goal in years (default 7)",
    )
    plot_parser.add_argument(
        "--springs", type=float, default=1e8,
        help="springs duty-cycle rating (default 1e8)",
    )
    plot_parser.add_argument(
        "--probe-cycles", type=float, default=100.0,
        help="probe write-cycle rating (default 100)",
    )
    plot_parser.add_argument(
        "--width", type=int, default=72, help="chart width in characters"
    )
    plot_parser.add_argument(
        "--height", type=int, default=22, help="chart height in characters"
    )

    sim_parser = subparsers.add_parser(
        "simulate", help="run the DES streaming pipeline"
    )
    sim_parser.add_argument(
        "--rate", type=float, required=True, help="streaming rate in kbps"
    )
    sim_parser.add_argument(
        "--buffer-kb", type=float, required=True, help="buffer size in kB"
    )
    sim_parser.add_argument(
        "--duration", type=float, default=60.0,
        help="simulated seconds (default 60)",
    )
    sim_parser.add_argument(
        "--always-on", action="store_true",
        help="simulate the always-on reference instead of shutdown policy",
    )
    return parser


def _command_list() -> int:
    experiments = list_experiments()
    width = max(len(name) for name, _ in experiments)
    for name, description in experiments:
        print(f"{name:{width}s}  {description}")
    return 0


def _expand_experiment_ids(experiment_ids: Sequence[str]) -> list[str]:
    """Expand ``all`` and reject unknown ids before anything runs."""
    ids = list(experiment_ids)
    if not ids or ids == ["all"]:
        return [name for name, _ in list_experiments()]
    validate_experiment_ids(ids)
    return ids


def _telemetry_capture(args: argparse.Namespace):
    """``(RunCapture, trace_path, sidecar_path)`` for a run command.

    ``--trace`` / ``--telemetry`` win; the ``REPRO_TRACE`` /
    ``REPRO_TELEMETRY`` environment variables fill in when the flags
    are absent.  Returns ``(None, None, None)`` when neither output is
    requested, so the commands skip the capture entirely.
    """
    from .telemetry import (
        TRACE_ENV_VAR,
        RunCapture,
        reset_telemetry,
        telemetry_sidecar_path,
    )

    trace = args.trace or os.environ.get(TRACE_ENV_VAR) or None
    sidecar = args.telemetry_file or telemetry_sidecar_path()
    if not trace and not sidecar:
        return None, None, None
    # Fresh registries so the artifacts describe this run only.
    reset_telemetry()
    return RunCapture(), trace, sidecar


def _export_capture(capture, trace, sidecar, meta) -> None:
    written = capture.export(trace=trace, sidecar=sidecar, meta=meta)
    for kind in sorted(written):
        print(f"(wrote {kind} {written[kind]})")


def _command_run(args: argparse.Namespace) -> int:
    from .errors import ConfigurationError

    jobs = args.jobs
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    ids = _expand_experiment_ids(args.experiments)
    capture, trace, sidecar = _telemetry_capture(args)
    if jobs > 1 or capture is not None or args.executor is not None:
        # Duplicate ids execute once but render every time they were
        # asked for, matching serial output exactly.  A telemetry
        # capture or explicit backend choice routes the serial case
        # through the queue too, so the run emits the same event
        # stream either way.
        results = run_experiments(
            list(dict.fromkeys(ids)),
            jobs=jobs,
            observers=[capture] if capture is not None else [],
            run_id=capture.run_id if capture is not None else "",
            executor=args.executor,
        )
        rendered = [results[experiment_id].render() for experiment_id in ids]
        for text in rendered:
            print(text)
    else:
        rendered = []
        for experiment_id in ids:
            result = run_experiment(experiment_id)
            text = result.render()
            print(text)
            rendered.append(text)
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write("\n".join(rendered))
        print(f"(wrote {args.output})")
    if capture is not None:
        _export_capture(
            capture, trace, sidecar, {"command": "run", "jobs": jobs}
        )
    return 0


def _command_campaign_watch(args: argparse.Namespace) -> int:
    """Submit to (or attach to) a campaign service and stream its TUI.

    The remote run feeds the same :class:`ProgressMonitor` a local
    ``repro campaign`` uses — the service's events subclass
    ``JobEvent``, so the TUI cannot tell the difference.
    """
    from . import api
    from .runner import ProgressMonitor

    url = args.watch
    if args.watch_run is not None:
        run_id = args.watch_run
        print(f"attaching to run {run_id} at {url}")
    else:
        ids = _expand_experiment_ids(args.experiments)
        spec = {
            "kind": "campaign",
            "name": "cli-campaign",
            "jobs": args.jobs,
            "specs": [
                {
                    "kind": "experiment",
                    "experiment_id": experiment_id,
                    "retries": args.retries,
                }
                for experiment_id in ids
            ],
        }
        if args.executor is not None:
            spec["executor"] = args.executor
        run_id = api.submit(spec, url=url)
        print(f"submitted run {run_id} to {url}")
    monitor = None if args.quiet else ProgressMonitor(stream=sys.stdout)
    for _ in api.watch(run_id, url=url, on_event=monitor):
        pass
    status = api.status(run_id, url=url)
    state = status.get("state", "?")
    print(f"run {run_id}: {state}")
    if status.get("error"):
        print(f"  {status['error']}")
    return 0 if state == "done" else 1


def _command_campaign(args: argparse.Namespace) -> int:
    from .runner import ProgressMonitor, registry_campaign, run_campaign

    if args.watch is not None:
        return _command_campaign_watch(args)
    if args.watch_run is not None:
        from .errors import ConfigurationError

        raise ConfigurationError("--run needs --watch URL")
    ids = _expand_experiment_ids(args.experiments)
    campaign = registry_campaign(ids, retries=args.retries)
    monitor = (
        None if args.quiet else ProgressMonitor(stream=sys.stdout)
    )
    capture, trace, sidecar = _telemetry_capture(args)
    result = run_campaign(
        campaign,
        jobs=args.jobs,
        store_path=args.store,
        store_backend=args.store_backend,
        observers=[capture] if capture is not None else [],
        monitor=monitor,
        run_id=capture.run_id if capture is not None else "",
        executor=args.executor,
    )
    print()
    print(result.summary())
    if capture is not None:
        _export_capture(
            capture, trace, sidecar,
            {"command": "campaign", "jobs": args.jobs},
        )
    return 0 if result.ok else 1


def _sweep_grid(args: argparse.Namespace):
    """The sweep grid from either --values or --min/--max/--points.

    Explicit ``--values`` become a value list; ``--min/--max/--points``
    become a grid *descriptor*, so shard jobs ship four scalars instead
    of the whole grid and workers materialise their own slices.
    """
    from .errors import ConfigurationError
    from .runner import grid_descriptor

    if args.values is not None:
        if args.grid_min is not None or args.grid_max is not None:
            raise ConfigurationError(
                "pass either --values or --min/--max, not both"
            )
        try:
            grid = [float(v) for v in args.values.split(",") if v.strip()]
        except ValueError as error:
            raise ConfigurationError(
                f"--values must be comma-separated numbers: {error}"
            ) from error
        if not grid:
            raise ConfigurationError("--values produced an empty grid")
        return grid
    if args.grid_min is None or args.grid_max is None:
        raise ConfigurationError(
            "pass --values or both --min and --max"
        )
    if args.points < 2:
        raise ConfigurationError(f"--points must be >= 2, got {args.points}")
    if not args.linear and args.grid_min <= 0:
        raise ConfigurationError(
            "log-spaced grids need --min > 0 (or pass --linear)"
        )
    return grid_descriptor(
        "linspace" if args.linear else "geomspace",
        args.grid_min,
        args.grid_max,
        args.points,
    )


def _command_sweep(args: argparse.Namespace) -> int:
    from .runner import ProgressMonitor, run_sharded_sweep

    values = _sweep_grid(args)
    monitor = None if args.quiet else ProgressMonitor(stream=sys.stdout)
    capture, trace, sidecar = _telemetry_capture(args)
    result = run_sharded_sweep(
        args.name,
        args.target,
        args.parameter,
        values,
        store_path=args.store,
        shards=args.shards,
        jobs=args.jobs,
        store_backend=args.store_backend,
        codec=args.codec,
        monitor=monitor,
        strict=False,
        observers=[capture] if capture is not None else [],
        run_id=capture.run_id if capture is not None else "",
        executor=args.executor,
    )
    print()
    print(result.summary())
    merge = result.results.get(f"{args.name}/merge")
    if result.ok and merge is not None and isinstance(merge.value, dict):
        summary = merge.value
        stored = (
            f"{summary.get('block_records', 0)} columnar blocks"
            if summary.get("block_records")
            else f"{summary.get('point_records', 0)} point records"
        )
        print()
        print(
            f"{summary['points']} points over {summary['shards']} shards "
            f"-> {args.store} ({stored})"
        )
        for name in sorted(summary.get("metrics", {})):
            stats = summary["metrics"][name]
            low = stats["min"]
            high = stats["max"]
            print(
                f"  {name}: {stats['finite']} finite"
                + (
                    f", min {low:g}, max {high:g}"
                    if low is not None and high is not None
                    else ""
                )
            )
    if capture is not None:
        _export_capture(
            capture, trace, sidecar,
            {
                "command": "sweep",
                "jobs": args.jobs,
                "shards": args.shards,
            },
        )
    return 0 if result.ok else 1


def _command_serve(args: argparse.Namespace) -> int:
    from .service import CampaignServer, serve_forever

    trace_dir = args.trace_dir or os.environ.get("REPRO_TRACE_DIR") or None
    server = CampaignServer(
        args.store,
        host=args.host,
        port=args.port,
        store_backend=args.store_backend,
        jobs=args.jobs,
        executor=args.executor,
        runs_dir=args.runs_dir,
        trace_dir=trace_dir,
    ).start()
    print(f"repro service listening on {server.url}")
    print(f"  store     : {args.store}")
    print(f"  runs dir  : {server.runs_dir}")
    if trace_dir:
        print(f"  trace dir : {trace_dir}")
    sys.stdout.flush()
    serve_forever(server)
    return 0


def _command_store(args: argparse.Namespace) -> int:
    from .runner.provenance import CONFIG_FIELD, VERSION_FIELD
    from .runner.store import ResultStore, migrate_store

    if args.store_command == "migrate":
        migrated = migrate_store(
            args.source,
            args.destination,
            src_backend=args.src_backend,
            dst_backend=args.dst_backend,
        )
        destination = ResultStore(args.destination)
        print(
            f"migrated {migrated} records: {args.source} -> "
            f"{args.destination} ({destination.backend_name})"
        )
        destination.close()
        return 0

    if not os.path.exists(args.path):
        from .errors import ConfigurationError

        raise ConfigurationError(f"store {args.path!r} does not exist")
    store = ResultStore(args.path, backend=args.backend)
    if args.store_command == "verify":
        from .runner.integrity import damage_total

        stats = store.verify()
        print(f"store     : {args.path}")
        print(f"backend   : {store.backend_name}")
        print(f"records   : {stats['records']}")
        print(f"verified  : {stats['checked']}")
        print(f"unchecked : {stats['unchecked']} (pre-checksum records)")
        for kind in sorted(stats["corrupt"]):
            print(f"  corrupt {kind}: {stats['corrupt'][kind]} "
                  f"records quarantined")
        print(f"corrupt   : {stats['corrupt_total']}")
        print(f"unreadable: {stats['unreadable']}")
        store.close()
        if damage_total(stats) > 0:
            print("DAMAGED: store holds quarantined records; "
                  "re-run the campaign to recompute them")
            return 1
        print("ok: every checksummed record verified")
        return 0
    if args.store_command == "compact":
        before = len(store)
        dropped = store.compact()
        print(
            f"compacted {args.path} ({store.backend_name}): "
            f"{before} -> {before - dropped} records "
            f"({dropped} superseded dropped)"
        )
        store.close()
        return 0

    # info — one streaming pass over the store
    from .runner.codec import payload_kind
    from .telemetry import reset_telemetry, telemetry_enabled

    if args.timings:
        # Fresh registry so the latencies describe this scan only.
        reset_telemetry()
    total = 0
    total_bytes = 0
    ok_keys = set()
    versions: dict[str, int] = {}
    kinds: dict[str, tuple[int, int]] = {}
    for record, nbytes in store.iter_records_with_size():
        total += 1
        total_bytes += nbytes
        if record.get("status") == "ok":
            ok_keys.add(record["key"])
        kind = payload_kind(record)
        count, size = kinds.get(kind, (0, 0))
        kinds[kind] = (count + 1, size + nbytes)
        label = (
            f"{record.get(VERSION_FIELD, '?')}"
            f"/{record.get(CONFIG_FIELD, '?')}"
        )
        versions[label] = versions.get(label, 0) + 1
    print(f"store    : {args.path}")
    print(f"backend  : {store.backend_name}")
    print(f"records  : {total}")
    print(f"ok keys  : {len(ok_keys)}")
    print(f"bytes    : {total_bytes}")
    # Largest payload kinds first: the byte column is what you read
    # this report for.
    for kind, (count, size) in sorted(
        kinds.items(), key=lambda item: (-item[1][1], item[0])
    ):
        print(f"  payload {kind}: {count} records, {size} bytes")
    for label in sorted(versions):
        print(f"  provenance {label}: {versions[label]} records")
    if args.timings:
        _print_store_timings(store.backend_name, telemetry_enabled())
    store.close()
    return 0


def _print_store_timings(backend_name: str, enabled: bool) -> None:
    """Backend call latencies recorded during the info scan."""
    from .telemetry import metrics

    print("timings  :")
    if not enabled:
        print("  (telemetry disabled via REPRO_TELEMETRY)")
        return
    histograms = metrics().snapshot()["histograms"]
    prefix = f"store.{backend_name}."
    shown = False
    for name in sorted(histograms):
        if not name.startswith(prefix):
            continue
        hist = histograms[name]
        count = int(hist["count"])
        total = float(hist["total"])
        mean = total / count if count else 0.0
        print(
            f"  {name}: {count} calls, total {total * 1e3:.2f}ms, "
            f"mean {mean * 1e3:.3f}ms"
        )
        shown = True
    if not shown:
        print("  (no backend calls recorded)")


def _read_sidecar_checked(path: str) -> dict:
    """A parsed telemetry sidecar, or a :class:`ReproError` to report."""
    from .errors import ConfigurationError
    from .telemetry import read_sidecar

    try:
        return read_sidecar(path)
    except (OSError, ValueError) as error:
        raise ConfigurationError(
            f"cannot read telemetry sidecar {path!r}: {error}"
        ) from error


def _command_trace(args: argparse.Namespace) -> int:
    from .telemetry import write_chrome_trace

    data = _read_sidecar_checked(args.run)
    output = args.output or args.run + ".trace.json"
    meta = data["meta"]
    write_chrome_trace(
        output,
        data["spans"],
        data["events"],
        parent_pid=meta.get("parent_pid"),
        metadata=meta,
    )
    print(
        f"(wrote trace {output}: {len(data['spans'])} spans, "
        f"{len(data['events'])} events)"
    )
    return 0


def _command_telemetry(args: argparse.Namespace) -> int:
    from .telemetry import summarize

    print(summarize(_read_sidecar_checked(args.run)))
    return 0


def _command_kernels(args: argparse.Namespace) -> int:
    from .kernels import kernel_info

    info = kernel_info()
    print(f"requested tier : {info['requested_tier']}")
    print(f"active tier    : {info['active_tier']}")
    if info["native_available"]:
        print("native tier    : available")
    else:
        print(f"native tier    : unavailable ({info['native_error']})")
    if info["cache_dir"]:
        print(
            f"jit cache      : {info['cache_dir']} "
            f"({info['cache_files']} files, {info['cache_bytes']} bytes)"
        )
    else:
        print("jit cache      : not pinned (set REPRO_KERNEL_CACHE_DIR)")
    if info["chunk_rows_override"]:
        print(f"chunk rows     : {info['chunk_rows_override']} (forced)")
    else:
        print("chunk rows     : adaptive")
    print("kernels        :")
    for name, tiers in info["kernels"].items():
        print(f"  {name}: {', '.join(tiers)}")
    return 0


def _command_dimension(args: argparse.Namespace) -> int:
    device = ibm_mems_prototype(
        springs_duty_cycles=args.springs,
        probe_write_cycles=args.probe_cycles,
    )
    workload = table1_workload()
    goal = DesignGoal(
        energy_saving=args.energy,
        capacity_utilisation=args.capacity,
        lifetime_years=args.lifetime,
    )
    dimensioner = BufferDimensioner(device, workload)
    requirement = dimensioner.dimension(goal, args.rate * 1000.0)
    print(requirement.summary())
    for outcome in requirement.outcomes:
        size = (
            units.format_size(outcome.min_buffer_bits)
            if outcome.feasible
            else "infeasible"
        )
        print(f"  {outcome.constraint.value:4s} needs >= {size}")
    return 0 if requirement.feasible else 1


def _command_plot(args: argparse.Namespace) -> int:
    from .analysis.plots import plot_design_space
    from .core.design_space import DesignSpaceExplorer

    device = ibm_mems_prototype(
        springs_duty_cycles=args.springs,
        probe_write_cycles=args.probe_cycles,
    )
    workload = table1_workload()
    goal = DesignGoal(
        energy_saving=args.energy,
        capacity_utilisation=args.capacity,
        lifetime_years=args.lifetime,
    )
    explorer = DesignSpaceExplorer(device, workload, points_per_decade=24)
    result = explorer.sweep(goal)
    print(plot_design_space(result, width=args.width, height=args.height))
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    device = ibm_mems_prototype()
    workload = table1_workload()
    rate = args.rate * 1000.0
    buffer_bits = units.kb_to_bits(args.buffer_kb)
    if args.always_on:
        report = simulate_always_on(
            device, buffer_bits, rate, args.duration, workload
        )
        print(report.summary())
        return 0
    report = simulate_streaming(
        device, buffer_bits, rate, args.duration, workload
    )
    print(report.summary())
    comparison = compare_with_model(report, device, workload, rate)
    print(
        f"model agreement   : energy {comparison.energy_error:.2%}, "
        f"cycles {comparison.cycle_error:.2%}"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _command_list()
        if args.command == "run":
            return _command_run(args)
        if args.command == "campaign":
            return _command_campaign(args)
        if args.command == "sweep":
            return _command_sweep(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "worker":
            from .runner.executors.worker import worker_main

            return worker_main(args.task)
        if args.command == "store":
            return _command_store(args)
        if args.command == "trace":
            return _command_trace(args)
        if args.command == "telemetry":
            return _command_telemetry(args)
        if args.command == "kernels":
            return _command_kernels(args)
        if args.command == "dimension":
            return _command_dimension(args)
        if args.command == "plot":
            return _command_plot(args)
        if args.command == "simulate":
            return _command_simulate(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Piping long output (telemetry summary, store info) into a
        # pager that exits early is normal, not a crash.  Redirect
        # stdout to devnull so the interpreter's shutdown flush does
        # not raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
