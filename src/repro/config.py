"""Configuration objects for devices, workloads, formats, and design goals.

All experiment inputs flow through the frozen dataclasses defined here.
Each dataclass validates itself on construction, so an impossible
configuration (negative power, streaming rate above the device rate, …)
fails loudly at the boundary instead of producing a silently wrong sweep.

The module also defines the presets of Table I in the paper:

* :func:`ibm_mems_prototype` — the modelled MEMS storage device,
* :func:`table1_workload` — the exercised streaming workload,
* :func:`disk_18inch` — the 1.8-inch disk-drive comparator of §III.A.1,
* :func:`micron_ddr_dram` — the Micron DDR DRAM buffer of §IV.A.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from . import units
from .errors import ConfigurationError

# ---------------------------------------------------------------------------
# Mechanical storage devices
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MechanicalDeviceConfig:
    """Power/timing description of a mechanical storage device.

    This is the information needed by the energy model of Equation (1):
    how fast the device transfers, how long and how expensive the shutdown
    overhead is, and what the active/idle/standby power levels are.

    Attributes
    ----------
    name:
        Human-readable device name (used in reports).
    transfer_rate_bps:
        Sustained media transfer rate ``rm`` in bit/s.
    seek_time_s:
        Time ``tsk`` to position before a refill, in seconds.
    shutdown_time_s:
        Time ``tsd`` to park and power down after a refill, in seconds.
    read_write_power_w:
        Power ``P_RW`` while transferring, in watts.
    seek_power_w:
        Power while seeking, in watts.
    shutdown_power_w:
        Power during the shutdown transition, in watts.
    idle_power_w:
        Power ``P_idle`` when spinning/tracking but not transferring.
    standby_power_w:
        Power ``P_sb`` when shut down, in watts.
    capacity_bits:
        Raw device capacity ``C`` in bits (before formatting overheads).
    """

    name: str
    transfer_rate_bps: float
    seek_time_s: float
    shutdown_time_s: float
    read_write_power_w: float
    seek_power_w: float
    shutdown_power_w: float
    idle_power_w: float
    standby_power_w: float
    capacity_bits: float

    def __post_init__(self) -> None:
        positive = {
            "transfer_rate_bps": self.transfer_rate_bps,
            "capacity_bits": self.capacity_bits,
        }
        for label, value in positive.items():
            if value <= 0:
                raise ConfigurationError(f"{label} must be > 0, got {value!r}")
        non_negative = {
            "seek_time_s": self.seek_time_s,
            "shutdown_time_s": self.shutdown_time_s,
            "read_write_power_w": self.read_write_power_w,
            "seek_power_w": self.seek_power_w,
            "shutdown_power_w": self.shutdown_power_w,
            "idle_power_w": self.idle_power_w,
            "standby_power_w": self.standby_power_w,
        }
        for label, value in non_negative.items():
            if value < 0:
                raise ConfigurationError(f"{label} must be >= 0, got {value!r}")
        if self.standby_power_w >= self.idle_power_w:
            raise ConfigurationError(
                "standby power must be strictly below idle power for a "
                f"shutdown policy to ever pay off (standby={self.standby_power_w} W, "
                f"idle={self.idle_power_w} W)"
            )

    # -- derived quantities of Equation (1) --------------------------------

    @property
    def overhead_time_s(self) -> float:
        """Shutdown overhead time ``toh = tsk + tsd`` (seconds)."""
        return self.seek_time_s + self.shutdown_time_s

    @property
    def overhead_energy_j(self) -> float:
        """Shutdown overhead energy ``Eoh = Esk + Esd`` (joules)."""
        return (
            self.seek_power_w * self.seek_time_s
            + self.shutdown_power_w * self.shutdown_time_s
        )

    @property
    def overhead_power_w(self) -> float:
        """Mean overhead power ``Poh = Eoh / toh`` (watts)."""
        if self.overhead_time_s == 0:
            return 0.0
        return self.overhead_energy_j / self.overhead_time_s

    def replace(self, **changes) -> "MechanicalDeviceConfig":
        """Return a copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class MEMSDeviceConfig(MechanicalDeviceConfig):
    """A MEMS probe-storage device (Table I of the paper).

    Extends the generic mechanical device with the probe-array geometry and
    endurance ratings that the capacity and lifetime models need.

    Attributes
    ----------
    probe_rows, probe_cols:
        Dimensions of the probe array (Table I: 64 x 64).
    active_probes:
        Number of probes used in parallel, ``K`` (Table I: 1024).
    probe_field_x_um, probe_field_y_um:
        Scan field of a single probe in micrometres (Table I: 100 x 100).
    per_probe_rate_bps:
        Data rate of a single probe in bit/s (Table I: 100 kbps).
    sync_bits_per_subsector:
        Synchronisation bits stored between consecutive subsectors
        (paper §III.B.2: 3 bits, a 30 µs processing window).
    ecc_numerator, ecc_denominator:
        ECC overhead as a fraction of user data; the paper uses 1/8 in line
        with the IBM device (``S_ECC = ceil(Su / 8)``).
    springs_duty_cycles:
        Duty-cycle rating ``Dsp`` of the positioner springs
        (Table I: 1e8 electroplated nickel, 1e12 silicon).
    probe_write_cycles:
        Write-cycle rating ``Dpb`` of the probe tips (Table I: 100 & 200).
    probe_wear_factor:
        Calibration factor multiplying the written volume (1.0 = literal
        Equation (6); 2.0 models a write-verify pass — see DESIGN.md §4.5).
    """

    probe_rows: int = 64
    probe_cols: int = 64
    active_probes: int = 1024
    probe_field_x_um: float = 100.0
    probe_field_y_um: float = 100.0
    per_probe_rate_bps: float = 100_000.0
    sync_bits_per_subsector: int = 3
    ecc_numerator: int = 1
    ecc_denominator: int = 8
    springs_duty_cycles: float = 1e8
    probe_write_cycles: float = 100.0
    probe_wear_factor: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.probe_rows <= 0 or self.probe_cols <= 0:
            raise ConfigurationError("probe array dimensions must be positive")
        if not 0 < self.active_probes <= self.probe_rows * self.probe_cols:
            raise ConfigurationError(
                f"active_probes must lie in (0, {self.probe_rows * self.probe_cols}], "
                f"got {self.active_probes}"
            )
        if self.per_probe_rate_bps <= 0:
            raise ConfigurationError("per_probe_rate_bps must be > 0")
        if self.sync_bits_per_subsector < 0:
            raise ConfigurationError("sync_bits_per_subsector must be >= 0")
        if self.ecc_numerator < 0 or self.ecc_denominator <= 0:
            raise ConfigurationError("ECC fraction must be non-negative")
        if self.springs_duty_cycles <= 0 or self.probe_write_cycles <= 0:
            raise ConfigurationError("endurance ratings must be > 0")
        if self.probe_wear_factor <= 0:
            raise ConfigurationError("probe_wear_factor must be > 0")
        expected_rate = self.active_probes * self.per_probe_rate_bps
        if abs(expected_rate - self.transfer_rate_bps) > 1e-6 * expected_rate:
            raise ConfigurationError(
                "transfer_rate_bps must equal active_probes * per_probe_rate_bps "
                f"({expected_rate:g} bit/s), got {self.transfer_rate_bps:g}"
            )

    @property
    def total_probes(self) -> int:
        """Total number of probes in the array."""
        return self.probe_rows * self.probe_cols

    def replace(self, **changes) -> "MEMSDeviceConfig":
        """Return a copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **changes)


# ---------------------------------------------------------------------------
# Workloads and design goals
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadConfig:
    """Streaming workload description (bottom rows of Table I).

    Attributes
    ----------
    hours_per_day:
        Playback hours per day, every day of the year (Table I: 8).
    write_fraction:
        Fraction ``w`` of streamed traffic that writes to the device
        (Table I: 40%, e.g. recording video).
    best_effort_fraction:
        Fraction of every refill cycle ``Tm`` spent honouring best-effort
        OS/file-system requests (Table I: 5%).
    stream_rate_min_bps, stream_rate_max_bps:
        Bounds of the studied streaming bit-rate range (Table I:
        32 - 4096 kbps).
    """

    hours_per_day: float = 8.0
    write_fraction: float = 0.40
    best_effort_fraction: float = 0.05
    stream_rate_min_bps: float = 32_000.0
    stream_rate_max_bps: float = 4_096_000.0

    def __post_init__(self) -> None:
        if not 0 < self.hours_per_day <= 24:
            raise ConfigurationError(
                f"hours_per_day must lie in (0, 24], got {self.hours_per_day!r}"
            )
        if not 0 <= self.write_fraction <= 1:
            raise ConfigurationError("write_fraction must lie in [0, 1]")
        if not 0 <= self.best_effort_fraction < 1:
            raise ConfigurationError("best_effort_fraction must lie in [0, 1)")
        if not 0 < self.stream_rate_min_bps <= self.stream_rate_max_bps:
            raise ConfigurationError("stream rate range must be positive and ordered")

    @property
    def playback_seconds_per_year(self) -> float:
        """Total playback seconds per year, ``T`` in Equations (5)-(6)."""
        return units.playback_seconds_per_year(self.hours_per_day)

    def replace(self, **changes) -> "WorkloadConfig":
        """Return a copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class DesignGoal:
    """A design goal ``(E, C, L)`` as posed in §IV.C of the paper.

    Attributes
    ----------
    energy_saving:
        Desired energy saving ``E`` relative to an always-on device,
        as a fraction in [0, 1) (the paper studies 0.80 and 0.70).
    capacity_utilisation:
        Desired capacity utilisation ``C`` as a fraction in (0, 1]
        (the paper studies 0.88 and 0.85).
    lifetime_years:
        Desired device lifetime ``L`` in years (the paper uses 7, the
        typical lifetime of a mobile device).
    """

    energy_saving: float = 0.80
    capacity_utilisation: float = 0.88
    lifetime_years: float = 7.0

    def __post_init__(self) -> None:
        if not 0 <= self.energy_saving < 1:
            raise ConfigurationError("energy_saving must lie in [0, 1)")
        if not 0 < self.capacity_utilisation <= 1:
            raise ConfigurationError("capacity_utilisation must lie in (0, 1]")
        if self.lifetime_years <= 0:
            raise ConfigurationError("lifetime_years must be > 0")

    def replace(self, **changes) -> "DesignGoal":
        """Return a copy of this goal with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def label(self) -> str:
        """Short label like ``(E=80%, C=88%, L=7)`` used in reports."""
        return (
            f"(E={self.energy_saving:.0%}, C={self.capacity_utilisation:.0%}, "
            f"L={self.lifetime_years:g})"
        )


# ---------------------------------------------------------------------------
# DRAM buffer
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DRAMConfig:
    """A DDR DRAM buffer, parameterised in the style of Micron TN-46-03.

    The technical note computes system power from IDD currents and the
    supply voltage; we store the resulting per-device power/energy figures,
    which is the granularity the paper's §IV.A analysis needs.

    Attributes
    ----------
    name:
        Part label used in reports.
    vdd_v:
        Supply voltage in volts.
    standby_power_w:
        Background power of a powered-down (self-refresh) device, watts.
    active_standby_power_w:
        Background power while the device is active/idle (no bursts), watts.
    read_energy_j_per_bit, write_energy_j_per_bit:
        Access energy per transferred bit, joules.
    activate_energy_j:
        Energy of one activate/precharge pair, joules.
    row_size_bits:
        Bits transferred per activated row (page size).
    refresh_power_w_per_gb:
        Refresh (retention) power per decimal gigabyte of buffered data.
    """

    name: str = "Micron DDR (TN-46-03)"
    vdd_v: float = 2.6
    standby_power_w: float = 0.005
    active_standby_power_w: float = 0.070
    read_energy_j_per_bit: float = 2.0e-10
    write_energy_j_per_bit: float = 2.2e-10
    activate_energy_j: float = 2.0e-9
    row_size_bits: float = 8_192.0
    refresh_power_w_per_gb: float = 0.015

    def __post_init__(self) -> None:
        values = {
            "vdd_v": self.vdd_v,
            "row_size_bits": self.row_size_bits,
        }
        for label, value in values.items():
            if value <= 0:
                raise ConfigurationError(f"{label} must be > 0, got {value!r}")
        non_negative = {
            "standby_power_w": self.standby_power_w,
            "active_standby_power_w": self.active_standby_power_w,
            "read_energy_j_per_bit": self.read_energy_j_per_bit,
            "write_energy_j_per_bit": self.write_energy_j_per_bit,
            "activate_energy_j": self.activate_energy_j,
            "refresh_power_w_per_gb": self.refresh_power_w_per_gb,
        }
        for label, value in non_negative.items():
            if value < 0:
                raise ConfigurationError(f"{label} must be >= 0, got {value!r}")

    def replace(self, **changes) -> "DRAMConfig":
        """Return a copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **changes)


# ---------------------------------------------------------------------------
# Table I presets
# ---------------------------------------------------------------------------


def ibm_mems_prototype(
    springs_duty_cycles: float = 1e8,
    probe_write_cycles: float = 100.0,
    probe_wear_factor: float = 1.0,
) -> MEMSDeviceConfig:
    """The modelled MEMS storage device of Table I (IBM prototype [1]).

    Parameters allow selecting the low/high-end endurance ratings studied in
    the paper: springs at 1e8 (electroplated nickel) or 1e12 (silicon)
    cycles, probes at 100 or 200 write cycles.
    """
    return MEMSDeviceConfig(
        name="IBM MEMS prototype (Table I)",
        transfer_rate_bps=1024 * 100_000.0,  # 1024 active probes x 100 kbps
        seek_time_s=units.ms_to_seconds(2.0),
        shutdown_time_s=units.ms_to_seconds(1.0),
        read_write_power_w=units.mw_to_watts(316.0),
        seek_power_w=units.mw_to_watts(672.0),
        shutdown_power_w=units.mw_to_watts(672.0),
        idle_power_w=units.mw_to_watts(120.0),
        standby_power_w=units.mw_to_watts(5.0),
        capacity_bits=units.gb_to_bits(120.0),
        probe_rows=64,
        probe_cols=64,
        active_probes=1024,
        probe_field_x_um=100.0,
        probe_field_y_um=100.0,
        per_probe_rate_bps=100_000.0,
        sync_bits_per_subsector=3,
        ecc_numerator=1,
        ecc_denominator=8,
        springs_duty_cycles=springs_duty_cycles,
        probe_write_cycles=probe_write_cycles,
        probe_wear_factor=probe_wear_factor,
    )


def disk_18inch() -> MechanicalDeviceConfig:
    """A 1.8-inch disk drive, the comparator of §III.A.1.

    The paper quotes a break-even buffer of 0.08 - 9.29 MB over
    32 - 4096 kbps for this drive, three orders of magnitude above MEMS.
    The parameters below are plausible figures for a 2008-era 1.8-inch
    drive — the pre-refill "seek" is dominated by the ~2.9 s spin-up at
    ~1.3 W; idle 250 mW, standby 45 mW — calibrated so that the break-even
    ratio ``(Eoh - Psb*toh) / (Pidle - Psb)`` equals ~18.15 s, which
    reproduces the paper's range (see DESIGN.md §4.6).
    """
    return MechanicalDeviceConfig(
        name="1.8-inch disk drive",
        transfer_rate_bps=units.mbps_to_bps(200.0),
        seek_time_s=2.93,  # spin-up + initial seek
        shutdown_time_s=0.5,
        read_write_power_w=1.4,
        seek_power_w=1.3,  # mean spin-up power
        shutdown_power_w=0.13,
        idle_power_w=0.25,
        standby_power_w=0.045,
        capacity_bits=units.gb_to_bits(80.0),
    )


def table1_workload() -> WorkloadConfig:
    """The exercised workload of Table I (8 h/day, 40% writes, 5% BE)."""
    return WorkloadConfig(
        hours_per_day=8.0,
        write_fraction=0.40,
        best_effort_fraction=0.05,
        stream_rate_min_bps=32_000.0,
        stream_rate_max_bps=4_096_000.0,
    )


def micron_ddr_dram() -> DRAMConfig:
    """The Micron DDR DRAM buffer model of §IV.A (TN-46-03)."""
    return DRAMConfig()


#: Streaming rates (bit/s) marked on the x-axes of Figure 3: powers of two
#: from 32 to 4096 kbps.
TABLE1_RATE_GRID_BPS: tuple[float, ...] = tuple(
    float(units.kbps_to_bps(32 * 2 ** k)) for k in range(8)
)
