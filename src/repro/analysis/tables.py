"""ASCII tables and series renderers.

Every experiment in this library prints its artefact the way the paper
lays it out: Table I as a settings table, Figures 2-3 as aligned numeric
series.  The helpers here keep that rendering in one place so experiment
modules contain only *data*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


@dataclass(frozen=True)
class Table:
    """A titled table of rows, renderable as aligned ASCII."""

    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple[Any, ...], ...]
    notes: tuple[str, ...] = field(default=())

    def render(self) -> str:
        """Aligned ASCII rendering with title and footnotes."""
        body = format_table(self.headers, self.rows)
        parts = [self.title, "=" * len(self.title), body]
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)

    def column(self, name: str) -> list[Any]:
        """Extract one column by header name."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3g}"
        return f"{value:,.4g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]]
) -> str:
    """Render rows as an aligned, pipe-separated ASCII table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append(
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    max_rows: int | None = None,
) -> str:
    """Render one or more y-series against an x-axis as a table.

    ``max_rows`` thins long sweeps evenly (keeping both endpoints) so a
    48-point-per-decade sweep prints as a readable excerpt.
    """
    count = len(x_values)
    for name, values in series.items():
        if len(values) != count:
            raise ValueError(
                f"series {name!r} has {len(values)} points, x has {count}"
            )
    indices = list(range(count))
    if max_rows is not None and count > max_rows > 1:
        step = (count - 1) / (max_rows - 1)
        indices = sorted({round(i * step) for i in range(max_rows)})
    headers = [x_label, *series.keys()]
    rows = [
        [x_values[i], *(values[i] for values in series.values())]
        for i in indices
    ]
    return format_table(headers, rows)
