"""Analytic-vs-simulation validation matrices.

Runs the executable pipeline of :mod:`repro.streaming` across a grid of
operating points and compares the measured per-bit energy and cycle
frequency against Equation (1).  This is the library's standing evidence
that the closed forms and the simulated system describe the same machine
(the methodological substitution documented in DESIGN.md §4.8).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import units
from ..config import MechanicalDeviceConfig, WorkloadConfig
from ..core.energy import EnergyModel
from ..streaming.pipeline import simulate_streaming
from ..streaming.stats import ModelComparison, compare_with_model
from .tables import Table


@dataclass(frozen=True)
class ValidationPoint:
    """One operating point's comparison outcome."""

    buffer_bits: float
    stream_rate_bps: float
    comparison: ModelComparison

    @property
    def ok(self) -> bool:
        """Within the standard 1% agreement tolerance."""
        return self.comparison.agrees(0.01)


@dataclass(frozen=True)
class ValidationMatrix:
    """All operating points of a validation run."""

    points: tuple[ValidationPoint, ...]

    @property
    def all_agree(self) -> bool:
        """True when every point is inside the tolerance."""
        return all(point.ok for point in self.points)

    @property
    def worst_energy_error(self) -> float:
        """Largest relative per-bit-energy error across the matrix."""
        return max(p.comparison.energy_error for p in self.points)

    @property
    def worst_cycle_error(self) -> float:
        """Largest relative cycle-frequency error across the matrix."""
        return max(p.comparison.cycle_error for p in self.points)

    def as_table(self) -> Table:
        """Render the matrix as a :class:`~repro.analysis.tables.Table`."""
        rows = []
        for point in self.points:
            rows.append(
                (
                    units.format_size(point.buffer_bits),
                    units.format_rate(point.stream_rate_bps),
                    point.comparison.simulated_per_bit_j * 1e9,
                    point.comparison.predicted_per_bit_j * 1e9,
                    point.comparison.energy_error,
                    point.comparison.cycle_error,
                    "yes" if point.ok else "NO",
                )
            )
        return Table(
            title="Analytic model vs discrete-event simulation",
            headers=(
                "buffer",
                "rate",
                "sim nJ/b",
                "model nJ/b",
                "energy err",
                "cycle err",
                "agree",
            ),
            rows=tuple(rows),
            notes=(
                "per-bit energy in the paper's convention (cycle energy / B)",
                "agreement tolerance: 1% relative",
            ),
        )


def validate_operating_points(
    device: MechanicalDeviceConfig,
    workload: WorkloadConfig,
    buffer_sizes_bits: tuple[float, ...],
    stream_rates_bps: tuple[float, ...],
    cycles_per_point: int = 150,
) -> ValidationMatrix:
    """Simulate and compare every (buffer, rate) combination.

    Each point runs long enough for ``cycles_per_point`` refill cycles so
    start-up edge effects stay well below the tolerance.
    """
    model = EnergyModel(device, workload)
    points = []
    for buffer_bits in buffer_sizes_bits:
        for rate in stream_rates_bps:
            duration = cycles_per_point * model.cycle_time(buffer_bits, rate)
            report = simulate_streaming(
                device, buffer_bits, rate, duration, workload=workload
            )
            comparison = compare_with_model(report, device, workload, rate)
            points.append(
                ValidationPoint(
                    buffer_bits=buffer_bits,
                    stream_rate_bps=rate,
                    comparison=comparison,
                )
            )
    return ValidationMatrix(points=tuple(points))
