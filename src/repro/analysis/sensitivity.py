"""One-at-a-time (OAT) sensitivity of the design space to its parameters.

The paper's conclusions rest on a handful of Table I constants (seek time,
standby power, sync bits, ECC ratio, best-effort tax, endurance ratings).
:func:`sensitivity_analysis` perturbs each knob by a multiplicative factor
and reports how three design-space landmarks move:

* the break-even buffer at a reference rate,
* the required buffer for a reference goal at that rate,
* the energy-wall rate of the goal (``inf`` when out of range).

This is the quantitative backing for the ablation benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..config import DesignGoal, MEMSDeviceConfig, WorkloadConfig
from ..core.design_space import DesignSpaceExplorer
from ..core.dimensioning import BufferDimensioner
from ..core.energy import EnergyModel
from ..errors import ConfigurationError
from .tables import Table

#: Device knobs that OAT perturbation understands (field name -> label).
DEVICE_KNOBS = {
    "seek_time_s": "seek time",
    "shutdown_time_s": "shutdown time",
    "read_write_power_w": "R/W power",
    "seek_power_w": "seek power",
    "idle_power_w": "idle power",
    "standby_power_w": "standby power",
    "sync_bits_per_subsector": "sync bits",
    "springs_duty_cycles": "springs rating",
    "probe_write_cycles": "probe rating",
}

#: Workload knobs.
WORKLOAD_KNOBS = {
    "hours_per_day": "hours/day",
    "write_fraction": "write fraction",
    "best_effort_fraction": "best-effort",
}


@dataclass(frozen=True)
class SensitivityResult:
    """Outcome of perturbing one knob by one factor."""

    knob: str
    factor: float
    break_even_bits: float
    required_buffer_bits: float
    energy_wall_bps: float

    def relative_to(self, baseline: "SensitivityResult") -> dict[str, float]:
        """Ratios against the unperturbed baseline (``nan`` if undefined)."""

        def ratio(new: float, old: float) -> float:
            if not (math.isfinite(new) and math.isfinite(old)) or old == 0:
                return float("nan")
            return new / old

        return {
            "break_even": ratio(self.break_even_bits, baseline.break_even_bits),
            "required_buffer": ratio(
                self.required_buffer_bits, baseline.required_buffer_bits
            ),
            "energy_wall": ratio(self.energy_wall_bps, baseline.energy_wall_bps),
        }


def _perturb_device(
    device: MEMSDeviceConfig, knob: str, factor: float
) -> MEMSDeviceConfig:
    value = getattr(device, knob)
    if knob == "sync_bits_per_subsector":
        new_value = max(0, int(round(value * factor)))
    else:
        new_value = value * factor
    return device.replace(**{knob: new_value})


def _perturb_workload(
    workload: WorkloadConfig, knob: str, factor: float
) -> WorkloadConfig:
    value = getattr(workload, knob)
    new_value = value * factor
    if knob == "hours_per_day":
        new_value = min(new_value, 24.0)
    if knob in ("write_fraction", "best_effort_fraction"):
        new_value = min(new_value, 0.95)
    return workload.replace(**{knob: new_value})


def _evaluate(
    device: MEMSDeviceConfig,
    workload: WorkloadConfig,
    goal: DesignGoal,
    rate_bps: float,
    knob: str,
    factor: float,
) -> SensitivityResult:
    energy = EnergyModel(device, workload)
    dimensioner = BufferDimensioner(device, workload)
    explorer = DesignSpaceExplorer(device, workload)
    # Landmarks come from the batch path on a grid of one — the same
    # code the dense sweeps run, so a perturbed case and a full scan can
    # never drift apart.
    rate_grid = np.asarray([rate_bps], dtype=float)
    requirement = dimensioner.require_batch(goal, rate_grid)
    return SensitivityResult(
        knob=knob,
        factor=factor,
        break_even_bits=float(energy.break_even_buffer_batch(rate_grid)[0]),
        required_buffer_bits=float(requirement.required_buffer_bits[0]),
        energy_wall_bps=explorer.energy_wall_rate(goal),
    )


def _evaluate_case(
    case: tuple[MEMSDeviceConfig, WorkloadConfig, DesignGoal, float, str,
                float],
) -> SensitivityResult:
    """Evaluate one perturbed (knob, factor) case.

    Module-level (and single-argument) so a process pool can map it;
    the frozen config dataclasses pickle across the boundary.
    """
    return _evaluate(*case)


def sensitivity_analysis(
    device: MEMSDeviceConfig,
    workload: WorkloadConfig,
    goal: DesignGoal | None = None,
    rate_bps: float = 1_024_000.0,
    factors: tuple[float, ...] = (0.5, 2.0),
    knobs: tuple[str, ...] | None = None,
    jobs: int = 1,
) -> tuple[SensitivityResult, list[SensitivityResult]]:
    """OAT sensitivity of the design-space landmarks.

    Returns ``(baseline, perturbed)`` where each perturbed entry is one
    (knob, factor) combination.  Unknown knob names raise
    :class:`~repro.errors.ConfigurationError`.  ``jobs > 1`` evaluates
    the perturbed cases over a process pool; the result order (and every
    number in it) is identical to serial evaluation.
    """
    goal = goal if goal is not None else DesignGoal()
    if knobs is None:
        knobs = tuple(DEVICE_KNOBS) + tuple(WORKLOAD_KNOBS)
    for knob in knobs:
        if knob not in DEVICE_KNOBS and knob not in WORKLOAD_KNOBS:
            raise ConfigurationError(f"unknown sensitivity knob {knob!r}")
    baseline = _evaluate(device, workload, goal, rate_bps, "baseline", 1.0)
    cases = []
    for knob in knobs:
        for factor in factors:
            if knob in DEVICE_KNOBS:
                try:
                    perturbed_device = _perturb_device(device, knob, factor)
                    perturbed_workload = workload
                except ConfigurationError:
                    continue  # perturbation left the physical envelope
            else:
                perturbed_device = device
                try:
                    perturbed_workload = _perturb_workload(
                        workload, knob, factor
                    )
                except ConfigurationError:
                    continue
            cases.append(
                (perturbed_device, perturbed_workload, goal, rate_bps,
                 knob, factor)
            )
    from ..runner.queue import parallel_map

    results = parallel_map(_evaluate_case, cases, jobs=jobs)
    return baseline, results


def sensitivity_table(
    baseline: SensitivityResult, results: list[SensitivityResult]
) -> Table:
    """Render a sensitivity study as a table of ratios to baseline."""
    rows = []
    for result in results:
        ratios = result.relative_to(baseline)
        rows.append(
            (
                result.knob,
                result.factor,
                ratios["break_even"],
                ratios["required_buffer"],
                ratios["energy_wall"],
            )
        )
    return Table(
        title="One-at-a-time sensitivity (ratios to baseline)",
        headers=(
            "knob",
            "factor",
            "break-even x",
            "required buffer x",
            "energy wall x",
        ),
        rows=tuple(rows),
        notes=(
            "required buffer at the reference goal and rate",
            "nan = undefined (e.g. wall out of range in both runs)",
        ),
    )
