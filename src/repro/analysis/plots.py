"""ASCII charts: the library's "figures" for terminals and logs.

Figures 2 and 3 of the paper are line charts; the benchmark harness and
CLI run headless, so this module renders series as text — linear or
logarithmic on either axis, multiple series distinguished by marker
characters, with ``inf`` values (infeasible design points) clipped to
the frame and flagged.

The renderer is deliberately simple (nearest-cell rasterisation onto a
character grid); its job is to make trends and crossovers visible in a
terminal, not to be pretty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError

#: Markers assigned to series in order.
_MARKERS = "*o+x#@%&"


@dataclass(frozen=True)
class Series:
    """One named line of (x, y) points."""

    name: str
    x: tuple[float, ...]
    y: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ConfigurationError(
                f"series {self.name!r}: x and y lengths differ"
            )
        if not self.x:
            raise ConfigurationError(f"series {self.name!r} is empty")


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ConfigurationError(
                f"log axis cannot show non-positive value {value!r}"
            )
        return math.log10(value)
    return value


class AsciiChart:
    """Character-grid chart of one or more series.

    Parameters
    ----------
    width, height:
        Plot area size in characters (excludes axes/labels).
    log_x, log_y:
        Logarithmic axes (Figure 3 uses log-log).
    """

    def __init__(
        self,
        width: int = 64,
        height: int = 20,
        log_x: bool = False,
        log_y: bool = False,
    ):
        if width < 8 or height < 4:
            raise ConfigurationError("chart must be at least 8x4 characters")
        self.width = width
        self.height = height
        self.log_x = log_x
        self.log_y = log_y
        self._series: list[Series] = []

    def add_series(
        self, name: str, x: Sequence[float], y: Sequence[float]
    ) -> None:
        """Add a line; ``inf``/``nan`` y-values are dropped from scaling
        and drawn clipped to the top frame."""
        self._series.append(
            Series(name=name, x=tuple(float(v) for v in x),
                   y=tuple(float(v) for v in y))
        )

    # -- rendering ----------------------------------------------------------

    def _bounds(self) -> tuple[float, float, float, float]:
        xs: list[float] = []
        ys: list[float] = []
        for series in self._series:
            for x_value, y_value in zip(series.x, series.y):
                if math.isfinite(x_value):
                    xs.append(_transform(x_value, self.log_x))
                if math.isfinite(y_value):
                    ys.append(_transform(y_value, self.log_y))
        if not xs or not ys:
            raise ConfigurationError("nothing finite to plot")
        x_low, x_high = min(xs), max(xs)
        y_low, y_high = min(ys), max(ys)
        if x_high == x_low:
            x_high = x_low + 1.0
        if y_high == y_low:
            y_high = y_low + 1.0
        return x_low, x_high, y_low, y_high

    def render(self, title: str = "", x_label: str = "", y_label: str = "") -> str:
        """Render the chart with frame, tick labels, and legend."""
        if not self._series:
            raise ConfigurationError("no series added")
        x_low, x_high, y_low, y_high = self._bounds()
        grid = [[" "] * self.width for _ in range(self.height)]

        def column_of(x_value: float) -> int | None:
            if not math.isfinite(x_value):
                return None
            position = (_transform(x_value, self.log_x) - x_low) / (
                x_high - x_low
            )
            return min(self.width - 1, max(0, round(position * (self.width - 1))))

        def row_of(y_value: float) -> int | None:
            if math.isnan(y_value):
                return None
            if math.isinf(y_value):
                return 0 if y_value > 0 else self.height - 1
            position = (_transform(y_value, self.log_y) - y_low) / (
                y_high - y_low
            )
            row = round((1.0 - position) * (self.height - 1))
            return min(self.height - 1, max(0, row))

        for index, series in enumerate(self._series):
            marker = _MARKERS[index % len(_MARKERS)]
            for x_value, y_value in zip(series.x, series.y):
                column = column_of(x_value)
                row = row_of(y_value)
                if column is None or row is None:
                    continue
                grid[row][column] = marker

        def axis_value(transformed: float, log: bool) -> float:
            return 10 ** transformed if log else transformed

        lines: list[str] = []
        if title:
            lines.append(title)
        if y_label:
            lines.append(f"[y: {y_label}]")
        top = axis_value(y_high, self.log_y)
        bottom = axis_value(y_low, self.log_y)
        label_width = 10
        for row_index, row in enumerate(grid):
            if row_index == 0:
                label = f"{top:.3g}"
            elif row_index == self.height - 1:
                label = f"{bottom:.3g}"
            else:
                label = ""
            lines.append(f"{label:>{label_width}s} |" + "".join(row))
        left = axis_value(x_low, self.log_x)
        right = axis_value(x_high, self.log_x)
        lines.append(" " * label_width + " +" + "-" * self.width)
        axis_line = f"{left:.3g}"
        right_text = f"{right:.3g}"
        padding = self.width - len(axis_line) - len(right_text)
        lines.append(
            " " * (label_width + 2) + axis_line + " " * max(1, padding)
            + right_text
        )
        if x_label:
            lines.append(" " * (label_width + 2) + f"[x: {x_label}]")
        legend = "   ".join(
            f"{_MARKERS[i % len(_MARKERS)]} {series.name}"
            for i, series in enumerate(self._series)
        )
        lines.append(" " * (label_width + 2) + legend)
        return "\n".join(lines)


def plot_design_space(result, width: int = 64, height: int = 20) -> str:
    """Render a Figure 3 panel from a
    :class:`~repro.core.design_space.DesignSpaceResult`."""
    from .. import units

    chart = AsciiChart(width=width, height=height, log_x=True, log_y=True)
    rates = [r / 1000 for r in result.rates_bps]
    required = [
        units.bits_to_kb(b) if math.isfinite(b) else math.inf
        for b in result.required_buffer_bits
    ]
    energy = [
        units.bits_to_kb(b) if math.isfinite(b) else math.inf
        for b in result.energy_buffer_bits
    ]
    chart.add_series("required buffer", rates, required)
    chart.add_series("energy-efficiency buffer", rates, energy)
    regions = "  ".join(region.label for region in result.regions)
    body = chart.render(
        title=f"goal {result.goal.label()}   regions: {regions}",
        x_label="streaming bit rate (kbps)",
        y_label="buffer capacity (kB)",
    )
    return body
