"""Generic one-parameter sweeps.

A tiny harness shared by the sensitivity module and the ablation
benchmarks: vary one knob, collect one or more scalar metrics, keep the
result queryable.  Metrics that raise
:class:`~repro.errors.InfeasibleDesignError` record ``inf`` — the sweep
keeps going (infeasibility is a *result* in this design space, not an
error).

Metrics come in two flavours: a plain callable is evaluated per grid
point (optionally across a process pool), while a :class:`BatchMetric`
wraps an array-in/array-out fast path — e.g. the vectorised model-core
methods — and is evaluated once for the whole grid.
"""

from __future__ import annotations

import functools
import math
import os
import pickle
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError, InfeasibleDesignError


@dataclass(frozen=True)
class BatchMetric:
    """An array-in/array-out metric for :func:`sweep_parameter`.

    ``func`` receives the whole grid (as a list) and must return one
    float per grid point, encoding infeasible points as ``inf`` (the
    batch model layer already does); a blanket
    :class:`~repro.errors.InfeasibleDesignError` marks every point
    infeasible.  Calling the wrapper with a single value still works,
    so a ``BatchMetric`` drops into any scalar-metric slot.
    """

    func: Callable[[Sequence[Any]], Any]

    def series(self, values: Sequence[Any]) -> tuple[float, ...]:
        """Evaluate the whole grid in one vectorised call."""
        try:
            out = np.asarray(self.func(list(values)), dtype=float)
        except InfeasibleDesignError:
            return tuple(math.inf for _ in values)
        if out.shape != (len(values),):
            raise ConfigurationError(
                f"batch metric returned shape {out.shape}, expected "
                f"({len(values)},)"
            )
        return tuple(float(v) for v in out)

    def __call__(self, value: Any) -> float:
        return self.series([value])[0]


@dataclass(frozen=True)
class SweepResult:
    """Outcome of :func:`sweep_parameter`."""

    parameter: str
    values: tuple[Any, ...]
    metrics: dict[str, tuple[float, ...]]

    def metric(self, name: str) -> tuple[float, ...]:
        """One metric's series across the sweep."""
        return self.metrics[name]

    @classmethod
    def from_arrays(
        cls,
        parameter: str,
        values: Any,
        metrics: Mapping[str, Any],
    ) -> "SweepResult":
        """Build a result around existing arrays, seeding the cache.

        The array-native constructor for the columnar sweep pipeline:
        the arrays become the :meth:`as_arrays` view directly (so
        analysis code that consumes arrays never touches the tuple
        fields), and the tuple fields are materialised with one
        C-level ``tolist`` per series.
        """
        values_array = np.array(values)
        metric_arrays = {
            name: np.array(series, dtype=float)
            for name, series in metrics.items()
        }
        result = cls(
            parameter=parameter,
            values=tuple(values_array.tolist()),
            metrics={
                name: tuple(array.tolist())
                for name, array in metric_arrays.items()
            },
        )
        values_array.setflags(write=False)
        for array in metric_arrays.values():
            array.setflags(write=False)
        object.__setattr__(
            result, "_arrays", (values_array, metric_arrays)
        )
        return result

    def as_arrays(self) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """The sweep as ``(values, {metric: np.ndarray})``, built once.

        Arrays are cached on the result, so analysis/plotting code can
        call this freely instead of rebuilding tuples per access.
        """
        cached = self.__dict__.get("_arrays")
        if cached is None:
            values = np.asarray(self.values)
            metrics = {
                name: np.asarray(series, dtype=float)
                for name, series in self.metrics.items()
            }
            # Shared cache: hand out read-only views so an in-place
            # edit by one caller cannot corrupt every later access.
            values.setflags(write=False)
            for array in metrics.values():
                array.setflags(write=False)
            cached = (values, metrics)
            object.__setattr__(self, "_arrays", cached)
        return cached

    def finite_mask(self, name: str) -> np.ndarray:
        """Boolean mask of sweep points with a finite value for ``name``.

        Computed via :func:`np.isfinite` on the cached metric array —
        no per-point Python loop, no tuple rebuilding.
        """
        return np.isfinite(self.as_arrays()[1][name])

    def argmin(self, name: str) -> Any:
        """Parameter value minimising ``name`` (finite points only)."""
        best_value, best_metric = None, math.inf
        for value, metric in zip(self.values, self.metrics[name]):
            if math.isfinite(metric) and metric < best_metric:
                best_value, best_metric = value, metric
        if best_value is None:
            raise ValueError(f"metric {name!r} is nowhere finite")
        return best_value

    def argmax(self, name: str) -> Any:
        """Parameter value maximising ``name`` (finite points only)."""
        best_value, best_metric = None, -math.inf
        for value, metric in zip(self.values, self.metrics[name]):
            if math.isfinite(metric) and metric > best_metric:
                best_value, best_metric = value, metric
        if best_value is None:
            raise ValueError(f"metric {name!r} is nowhere finite")
        return best_value


def _evaluate_point(
    metrics: dict[str, Callable[[Any], float]], value: Any
) -> dict[str, float]:
    """All metrics at one grid point (module-level so workers can run it)."""
    point: dict[str, float] = {}
    for name, func in metrics.items():
        try:
            point[name] = float(func(value))
        except InfeasibleDesignError:
            point[name] = math.inf
    return point


def _parallelisable(metrics: dict[str, Callable[[Any], float]]) -> bool:
    """Whether the metric callables can cross a process boundary.

    O(1) in the grid size: grid values are probed lazily — a value that
    fails to pickle mid-flight falls back to serial in the caller.
    """
    try:
        pickle.dumps(metrics)
    except Exception:  # noqa: BLE001 - any pickling failure means "no"
        return False
    return True


def _sharded_sweep(
    parameter: str,
    values: Sequence[Any],
    metrics: Mapping[str, Any],
    *,
    shards: int,
    store: str | os.PathLike[str],
    store_backend: str | None,
    jobs: int,
) -> SweepResult:
    """Route a grid through :func:`~repro.runner.sharding.run_sharded_sweep`.

    One sharded campaign per metric; every metric must be an importable
    ``"pkg.module:function"`` batch target (content keys hash the
    target, so callables cannot ride along).  Series come back through
    :func:`~repro.runner.sharding.collect_arrays` — columnar store
    blocks decode straight to numpy with no per-point Python-object
    hop.  Targets returning per-point mappings contribute one series
    per numeric sub-key, named ``"{metric}.{sub}"``, while plain
    per-point numbers keep the metric's own name.  Non-numeric columns
    (e.g. dominance labels) are skipped — a :class:`SweepResult` holds
    float series by contract.
    """
    from ..runner.campaign import run_campaign
    from ..runner.codec import KIND_SCALAR, SCALAR_COLUMN
    from ..runner.sharding import collect_arrays, sharded_sweep_campaign

    store_path = os.fspath(store)
    series: dict[str, np.ndarray] = {}
    for name, target in metrics.items():
        if not isinstance(target, str):
            raise ConfigurationError(
                "sharded sweeps run metrics as campaign jobs, which need "
                f"importable 'pkg.module:function' targets; metric {name!r} "
                f"is a {type(target).__name__}"
            )
        campaign = sharded_sweep_campaign(
            f"sweep/{parameter}/{name}",
            target,
            parameter,
            list(values),
            store_path=store_path,
            shards=shards,
            store_backend=store_backend,
        )
        run_campaign(
            campaign,
            jobs=jobs,
            store_path=store_path,
            store_backend=store_backend,
            cache_preload="specs",
            strict=True,
        )
        columns = collect_arrays(store_path, campaign, store_backend)
        numeric = columns.numeric()
        if columns.points_kind == KIND_SCALAR:
            if SCALAR_COLUMN not in numeric:
                raise ConfigurationError(
                    f"metric {name!r} returned non-numeric points; "
                    "sharded sweep metrics must yield numbers or "
                    "mappings of numbers"
                )
            series[name] = numeric[SCALAR_COLUMN]
        else:
            for sub, array in numeric.items():
                series[f"{name}.{sub}"] = array
    for name, metric_series in series.items():
        if len(metric_series) != len(values):
            raise ConfigurationError(
                f"metric {name!r} produced {len(metric_series)} values for "
                f"a {len(values)}-point grid (heterogeneous point mappings?)"
            )
    return SweepResult.from_arrays(
        parameter=parameter, values=tuple(values), metrics=series
    )


def sweep_parameter(
    parameter: str,
    values: Sequence[Any],
    metrics: dict[str, Callable[[Any], float]],
    jobs: int = 1,
    shards: int | None = None,
    store: str | os.PathLike[str] | None = None,
    store_backend: str | None = None,
) -> SweepResult:
    """Evaluate each metric at each parameter value.

    ``metrics`` maps a metric name to a callable of the parameter value.
    A callable raising :class:`~repro.errors.InfeasibleDesignError`
    records ``inf`` for that point.  :class:`BatchMetric` entries are
    evaluated once for the whole grid instead of per point.

    ``jobs > 1`` evaluates the grid points over a process pool (results
    stay in grid order, identical to serial).  Metrics or values that
    cannot be pickled — lambdas, closures — fall back to serial
    evaluation, so ``jobs`` is always safe to pass; batch metrics never
    enter the pool (one vectorised call needs no fan-out).

    ``shards``/``store`` route the grid through the campaign engine's
    sharded sweeps instead: each metric must then be an importable
    ``"pkg.module:function"`` batch target, the grid is split into
    content-hash-keyed shard jobs streaming through the result store at
    ``store`` (so interrupted sweeps resume and unchanged re-runs are
    pure cache hits), and the returned :class:`SweepResult` is
    assembled by streaming the store shard by shard — peak memory stays
    O(shard), not O(grid).  ``store`` alone implies the default shard
    count; ``shards`` alone is an error (there is nothing durable to
    resume from without a store).
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if not values:
        raise ValueError("sweep needs at least one value")
    if not metrics:
        raise ValueError("sweep needs at least one metric")
    if shards is not None or store is not None:
        if store is None:
            raise ConfigurationError(
                "sharded sweeps need a result store (pass store=...)"
            )
        return _sharded_sweep(
            parameter,
            values,
            metrics,
            shards=shards if shards is not None else 8,
            store=store,
            store_backend=store_backend,
            jobs=jobs,
        )
    batch_series = {
        name: metric.series(values)
        for name, metric in metrics.items()
        if isinstance(metric, BatchMetric)
    }
    scalar_metrics = {
        name: metric
        for name, metric in metrics.items()
        if not isinstance(metric, BatchMetric)
    }
    points = None
    if scalar_metrics:
        if jobs > 1 and _parallelisable(scalar_metrics):
            from ..runner.queue import parallel_map

            try:
                points = parallel_map(
                    functools.partial(_evaluate_point, scalar_metrics),
                    values,
                    jobs=jobs,
                )
            except (pickle.PicklingError, TypeError, AttributeError):
                points = None  # an unpicklable grid value; go serial
        if points is None:
            points = [
                _evaluate_point(scalar_metrics, value) for value in values
            ]
    return SweepResult(
        parameter=parameter,
        values=tuple(values),
        metrics={
            name: (
                batch_series[name]
                if name in batch_series
                else tuple(point[name] for point in points)
            )
            for name in metrics
        },
    )
