"""Generic one-parameter sweeps.

A tiny harness shared by the sensitivity module and the ablation
benchmarks: vary one knob, collect one or more scalar metrics, keep the
result queryable.  Metrics that raise
:class:`~repro.errors.InfeasibleDesignError` record ``inf`` — the sweep
keeps going (infeasibility is a *result* in this design space, not an
error).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..errors import InfeasibleDesignError


@dataclass(frozen=True)
class SweepResult:
    """Outcome of :func:`sweep_parameter`."""

    parameter: str
    values: tuple[Any, ...]
    metrics: dict[str, tuple[float, ...]]

    def metric(self, name: str) -> tuple[float, ...]:
        """One metric's series across the sweep."""
        return self.metrics[name]

    def finite_mask(self, name: str) -> tuple[bool, ...]:
        """Which sweep points produced a finite value for ``name``."""
        return tuple(math.isfinite(v) for v in self.metrics[name])

    def argmin(self, name: str) -> Any:
        """Parameter value minimising ``name`` (finite points only)."""
        best_value, best_metric = None, math.inf
        for value, metric in zip(self.values, self.metrics[name]):
            if math.isfinite(metric) and metric < best_metric:
                best_value, best_metric = value, metric
        if best_value is None:
            raise ValueError(f"metric {name!r} is nowhere finite")
        return best_value

    def argmax(self, name: str) -> Any:
        """Parameter value maximising ``name`` (finite points only)."""
        best_value, best_metric = None, -math.inf
        for value, metric in zip(self.values, self.metrics[name]):
            if math.isfinite(metric) and metric > best_metric:
                best_value, best_metric = value, metric
        if best_value is None:
            raise ValueError(f"metric {name!r} is nowhere finite")
        return best_value


def sweep_parameter(
    parameter: str,
    values: Sequence[Any],
    metrics: dict[str, Callable[[Any], float]],
) -> SweepResult:
    """Evaluate each metric at each parameter value.

    ``metrics`` maps a metric name to a callable of the parameter value.
    A callable raising :class:`~repro.errors.InfeasibleDesignError`
    records ``inf`` for that point.
    """
    if not values:
        raise ValueError("sweep needs at least one value")
    if not metrics:
        raise ValueError("sweep needs at least one metric")
    collected: dict[str, list[float]] = {name: [] for name in metrics}
    for value in values:
        for name, func in metrics.items():
            try:
                collected[name].append(float(func(value)))
            except InfeasibleDesignError:
                collected[name].append(math.inf)
    return SweepResult(
        parameter=parameter,
        values=tuple(values),
        metrics={name: tuple(series) for name, series in collected.items()},
    )
