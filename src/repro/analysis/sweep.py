"""Generic one-parameter sweeps.

A tiny harness shared by the sensitivity module and the ablation
benchmarks: vary one knob, collect one or more scalar metrics, keep the
result queryable.  Metrics that raise
:class:`~repro.errors.InfeasibleDesignError` record ``inf`` — the sweep
keeps going (infeasibility is a *result* in this design space, not an
error).
"""

from __future__ import annotations

import functools
import math
import pickle
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..errors import ConfigurationError, InfeasibleDesignError


@dataclass(frozen=True)
class SweepResult:
    """Outcome of :func:`sweep_parameter`."""

    parameter: str
    values: tuple[Any, ...]
    metrics: dict[str, tuple[float, ...]]

    def metric(self, name: str) -> tuple[float, ...]:
        """One metric's series across the sweep."""
        return self.metrics[name]

    def finite_mask(self, name: str) -> tuple[bool, ...]:
        """Which sweep points produced a finite value for ``name``."""
        return tuple(math.isfinite(v) for v in self.metrics[name])

    def argmin(self, name: str) -> Any:
        """Parameter value minimising ``name`` (finite points only)."""
        best_value, best_metric = None, math.inf
        for value, metric in zip(self.values, self.metrics[name]):
            if math.isfinite(metric) and metric < best_metric:
                best_value, best_metric = value, metric
        if best_value is None:
            raise ValueError(f"metric {name!r} is nowhere finite")
        return best_value

    def argmax(self, name: str) -> Any:
        """Parameter value maximising ``name`` (finite points only)."""
        best_value, best_metric = None, -math.inf
        for value, metric in zip(self.values, self.metrics[name]):
            if math.isfinite(metric) and metric > best_metric:
                best_value, best_metric = value, metric
        if best_value is None:
            raise ValueError(f"metric {name!r} is nowhere finite")
        return best_value


def _evaluate_point(
    metrics: dict[str, Callable[[Any], float]], value: Any
) -> dict[str, float]:
    """All metrics at one grid point (module-level so workers can run it)."""
    point: dict[str, float] = {}
    for name, func in metrics.items():
        try:
            point[name] = float(func(value))
        except InfeasibleDesignError:
            point[name] = math.inf
    return point


def _parallelisable(metrics: dict[str, Callable[[Any], float]]) -> bool:
    """Whether the metric callables can cross a process boundary.

    O(1) in the grid size: grid values are probed lazily — a value that
    fails to pickle mid-flight falls back to serial in the caller.
    """
    try:
        pickle.dumps(metrics)
    except Exception:  # noqa: BLE001 - any pickling failure means "no"
        return False
    return True


def sweep_parameter(
    parameter: str,
    values: Sequence[Any],
    metrics: dict[str, Callable[[Any], float]],
    jobs: int = 1,
) -> SweepResult:
    """Evaluate each metric at each parameter value.

    ``metrics`` maps a metric name to a callable of the parameter value.
    A callable raising :class:`~repro.errors.InfeasibleDesignError`
    records ``inf`` for that point.

    ``jobs > 1`` evaluates the grid points over a process pool (results
    stay in grid order, identical to serial).  Metrics or values that
    cannot be pickled — lambdas, closures — fall back to serial
    evaluation, so ``jobs`` is always safe to pass.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if not values:
        raise ValueError("sweep needs at least one value")
    if not metrics:
        raise ValueError("sweep needs at least one metric")
    points = None
    if jobs > 1 and _parallelisable(metrics):
        from ..runner.queue import parallel_map

        try:
            points = parallel_map(
                functools.partial(_evaluate_point, metrics), values,
                jobs=jobs,
            )
        except (pickle.PicklingError, TypeError, AttributeError):
            points = None  # an unpicklable grid value; evaluate serially
    if points is None:
        points = [_evaluate_point(metrics, value) for value in values]
    return SweepResult(
        parameter=parameter,
        values=tuple(values),
        metrics={
            name: tuple(point[name] for point in points) for name in metrics
        },
    )
