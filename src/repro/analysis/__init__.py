"""Analysis harness shared by experiments, benchmarks, and the CLI.

* :mod:`repro.analysis.tables` — ASCII rendering of tables and log-log
  series (the library's "figures" are printed series, as benchmarks run
  headless),
* :mod:`repro.analysis.sweep` — generic one-parameter sweeps,
* :mod:`repro.analysis.validation` — analytic-vs-simulation matrices,
* :mod:`repro.analysis.sensitivity` — one-at-a-time sensitivity studies.
"""

from .tables import Table, format_table, render_series
from .sweep import SweepResult, sweep_parameter
from .validation import ValidationMatrix, validate_operating_points
from .sensitivity import SensitivityResult, sensitivity_analysis
from .plots import AsciiChart, plot_design_space

__all__ = [
    "Table",
    "format_table",
    "render_series",
    "SweepResult",
    "sweep_parameter",
    "ValidationMatrix",
    "validate_operating_points",
    "SensitivityResult",
    "sensitivity_analysis",
    "AsciiChart",
    "plot_design_space",
]
