"""repro — reproduction of *Buffering Implications for the Design Space of
Streaming MEMS Storage* (Khatib & Abelmann, DATE 2011).

The library models the energy consumption, formatted capacity, and
component lifetime of a MEMS probe-storage device as functions of its
streaming buffer size, implements the inverse functions (design goal ->
buffer size), and explores the design space over streaming bit rates —
plus the substrates the paper relies on: a 1.8-inch disk comparator, a
Micron-style DRAM buffer power model, sector/ECC formatting, and a
discrete-event simulation of the streaming pipeline used to validate the
closed-form models.

Quickstart
----------
>>> import repro
>>> device = repro.ibm_mems_prototype()
>>> model = repro.EnergyModel(device, repro.table1_workload())
>>> round(repro.units.bits_to_kb(model.break_even_buffer(1_024_000)), 2)
2.23

Campaigns — batches of experiments run through the orchestration
engine (parallel workers, retry-on-failure, and a persistent result
store that makes re-runs resolve from cache):

>>> campaign = repro.registry_campaign(["table1", "breakeven"])
>>> outcome = repro.run_campaign(campaign, jobs=1)
>>> outcome.ok
True
>>> sorted(outcome.headlines())
['breakeven', 'table1']

Pass ``jobs=4`` to fan out over four worker processes (headline
scalars are bit-identical to serial execution) and
``store_path="results.jsonl"`` to persist results — an interrupted or
repeated campaign then resumes from the store instead of recomputing.
"""

from . import units
from .config import (
    DRAMConfig,
    DesignGoal,
    MEMSDeviceConfig,
    MechanicalDeviceConfig,
    WorkloadConfig,
    TABLE1_RATE_GRID_BPS,
    disk_18inch,
    ibm_mems_prototype,
    micron_ddr_dram,
    table1_workload,
)
from .core import (
    BatchRequirement,
    BufferDimensioner,
    BufferRequirement,
    CapacityModel,
    Constraint,
    ConstraintOutcome,
    DesignSpaceExplorer,
    DesignSpaceResult,
    DominanceRegion,
    EnergyModel,
    InverseSolver,
    LifetimeModel,
    ParetoFrontier,
    ParetoPoint,
    ProbesModel,
    RefillCycle,
    SpringsModel,
    TradeoffAnalysis,
    TradeoffPoint,
    energy_buffer_frontier,
)
from .core.tradeoff import compare_energy_goals
from .errors import (
    BufferUnderrunError,
    CampaignError,
    ConfigurationError,
    InfeasibleDesignError,
    ReproError,
    SimulationError,
    SolverError,
    UnitError,
)
from .runner import (
    Campaign,
    CampaignResult,
    JobResult,
    JobSpec,
    JsonlBackend,
    ProgressMonitor,
    ResultCache,
    ResultStore,
    SqliteBackend,
    migrate_store,
    registry_campaign,
    run_campaign,
)
from . import api

__version__ = "1.8.0"

#: Top-level names that moved behind the :mod:`repro.api` facade.
#: Importing them from here still works but warns — the facade names
#: (``repro.api.sweep`` / ``repro.api.sweep_campaign``) are the stable
#: spellings.
_DEPRECATED_EXPORTS = {
    "run_sharded_sweep": ("repro.runner.sharding", "repro.api.sweep"),
    "sharded_sweep_campaign": (
        "repro.runner.sharding",
        "repro.api.sweep_campaign",
    ),
}


def __getattr__(name: str):
    if name in _DEPRECATED_EXPORTS:
        import importlib
        import warnings

        module_path, replacement = _DEPRECATED_EXPORTS[name]
        warnings.warn(
            f"repro.{name} is deprecated; use {replacement} "
            f"(or import it from {module_path})",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(importlib.import_module(module_path), name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

__all__ = [
    "api",
    "units",
    # configuration
    "MechanicalDeviceConfig",
    "MEMSDeviceConfig",
    "WorkloadConfig",
    "DesignGoal",
    "DRAMConfig",
    "ibm_mems_prototype",
    "disk_18inch",
    "table1_workload",
    "micron_ddr_dram",
    "TABLE1_RATE_GRID_BPS",
    # core models
    "EnergyModel",
    "RefillCycle",
    "CapacityModel",
    "LifetimeModel",
    "SpringsModel",
    "ProbesModel",
    "InverseSolver",
    "BatchRequirement",
    "BufferDimensioner",
    "BufferRequirement",
    "Constraint",
    "ConstraintOutcome",
    "DesignSpaceExplorer",
    "DesignSpaceResult",
    "DominanceRegion",
    "TradeoffAnalysis",
    "TradeoffPoint",
    "compare_energy_goals",
    "ParetoFrontier",
    "ParetoPoint",
    "energy_buffer_frontier",
    # campaign engine
    "Campaign",
    "CampaignResult",
    "JobSpec",
    "JobResult",
    "JsonlBackend",
    "ProgressMonitor",
    "ResultCache",
    "ResultStore",
    "SqliteBackend",
    "migrate_store",
    "registry_campaign",
    "run_campaign",
    "run_sharded_sweep",
    "sharded_sweep_campaign",
    # errors
    "ReproError",
    "ConfigurationError",
    "UnitError",
    "InfeasibleDesignError",
    "SimulationError",
    "BufferUnderrunError",
    "CampaignError",
    "SolverError",
    "__version__",
]
