"""Columnar binary codec for sweep point payloads.

A million-point sweep used to move through the store as a million
Python dicts: each point built as ``{"metric": value, ...}``, pushed
through ``json_safe``, JSON-encoded into a shard payload, re-decoded at
merge, and re-encoded once more as a per-point record.  At that scale
serialization — not compute — dominates the pipeline.  This module
replaces the per-point hop with *columns*: a shard's results become
named ``float64``/``int64`` arrays packed as raw little-endian bytes in
one contiguous blob, decoded straight back to numpy with
``np.frombuffer`` — no per-point Python object is ever created on the
hot path.

Payload shape (the in-memory record value)::

    {
        "codec": "columnar",          # payload-kind marker
        "format": 1,                  # storage-format version stamp
        "count": N,                   # points in this payload
        "points_kind": "mapping",     # or "scalar"
        "values": {descriptor},       # the grid-value column
        "columns": [{descriptor}...], # one per metric, in order
        "blob": b"...",               # concatenated column bytes
    }

Column descriptors carry ``name`` and ``dtype``: ``"<f8"`` (float64),
``"<i8"`` (int64), ``"|u1"`` with a ``categories`` list (bools and
small string vocabularies stored as one-byte codes), or ``"json"``
with inline ``data`` — the lossless fallback for columns the binary
dtypes cannot represent exactly.  Type mapping is *exact by
construction*: a column is only packed binary when every value is the
same Python scalar type, so the columnar path round-trips bit-for-bit
against the JSON-dict path (NaN/inf included — IEEE doubles carry them
natively, which plain JSON cannot even promise).

Bytes cross the persistence boundary two ways:

* the JSONL backend replaces every ``bytes`` value with an
  ``{"@bytes": "<base64>"}`` marker on write and inverts it on read
  (:func:`jsonable_bytes` / :func:`restore_bytes`),
* the SQLite backend lifts bytes out into a native ``BLOB`` column,
  leaving ``{"@blob": [offset, length]}`` references in the JSON text
  (:func:`extract_blob` / :func:`inject_blob`).

Either way the record the rest of the system sees — cache, compaction,
migration — carries real ``bytes``, so columnar payloads move between
backends verbatim and a JSONL↔SQLite migration is still byte-exact.

The ``REPRO_POINT_CODEC`` environment variable (``columnar`` |
``json``) selects the default packing for sharded sweeps; old stores
whose payloads predate the codec keep reading — every decoder branches
on the payload's ``codec``/``format`` stamp.
"""

from __future__ import annotations

import base64
import os
import time
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..faults import fault_site
from ..kernels import dispatch
from ..telemetry import metrics

#: Environment variable naming the default point codec.
CODEC_ENV_VAR = "REPRO_POINT_CODEC"
#: Pack uniform numeric/categorical point series as binary columns.
CODEC_COLUMNAR = "columnar"
#: The legacy per-point JSON-dict path.
CODEC_JSON = "json"
CODECS = (CODEC_COLUMNAR, CODEC_JSON)

#: Storage-format version stamped into every columnar payload.  Bump it
#: when the payload layout changes; decoders refuse formats they do not
#: know instead of misreading bytes.
STORAGE_FORMAT = 1

#: Marker key for base64-encoded bytes inside JSONL records.
BYTES_KEY = "@bytes"
#: Marker key for ``[offset, length]`` references into a SQLite BLOB.
BLOB_KEY = "@blob"

#: Column name used when points are plain scalars, not mappings.
SCALAR_COLUMN = "value"

#: ``points_kind`` values.
KIND_MAPPING = "mapping"
KIND_SCALAR = "scalar"

_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1
_DTYPE_F8 = "<f8"
_DTYPE_I8 = "<i8"
_DTYPE_U1 = "|u1"
_DTYPE_JSON = "json"
_ITEMSIZE = {_DTYPE_F8: 8, _DTYPE_I8: 8, _DTYPE_U1: 1}


def default_codec() -> str:
    """The codec sharded sweeps use when none is passed explicitly."""
    name = os.environ.get(CODEC_ENV_VAR, "").strip() or CODEC_COLUMNAR
    return check_codec(name)


def check_codec(name: str) -> str:
    """Validate a codec name."""
    if name not in CODECS:
        known = ", ".join(CODECS)
        raise ConfigurationError(
            f"unknown point codec {name!r}; known: {known}"
        )
    return name


# -- column packing --------------------------------------------------------


def _pack_ndarray(column: np.ndarray) -> tuple[dict[str, Any], bytes] | None:
    """Pack a typed numpy column without a per-value type scan.

    The dtype decision stays here; the actual byte blit goes through
    the ``codec_pack`` kernel.
    """
    kind = column.dtype.kind
    if kind == "f":
        return {"dtype": _DTYPE_F8}, dispatch("codec_pack", column, _DTYPE_F8)
    if kind in "iu" and column.dtype.itemsize <= 8:
        if kind == "u" and column.dtype.itemsize == 8:
            return None  # uint64 may exceed int64; let the scan decide
        return {"dtype": _DTYPE_I8}, dispatch("codec_pack", column, _DTYPE_I8)
    if kind == "b":
        return (
            {"dtype": _DTYPE_U1, "categories": [False, True]},
            dispatch("codec_pack", column, _DTYPE_U1),
        )
    if kind == "U":
        categories, codes = np.unique(column, return_inverse=True)
        if categories.size <= 255:
            return (
                {"dtype": _DTYPE_U1, "categories": categories.tolist()},
                dispatch("codec_pack", codes, _DTYPE_U1),
            )
    return None


def _pack_values(values: Sequence[Any]) -> tuple[dict[str, Any], bytes]:
    """Pack one column, choosing the tightest exact representation.

    Binary dtypes are used only when every value shares one Python
    scalar type (so decoding restores the exact types the JSON path
    would have); anything else falls back to an inline ``json`` column.
    Returns ``(descriptor, column_bytes)`` — ``json`` columns carry
    their data inline and contribute no bytes.
    """
    if isinstance(values, np.ndarray):
        packed = _pack_ndarray(values)
        if packed is not None:
            return packed
        values = values.tolist()
    else:
        values = list(values)
    if values and all(type(v) is float for v in values):
        return {"dtype": _DTYPE_F8}, dispatch("codec_pack", values, _DTYPE_F8)
    if values and all(type(v) is bool for v in values):
        return (
            {"dtype": _DTYPE_U1, "categories": [False, True]},
            dispatch("codec_pack", values, _DTYPE_U1),
        )
    if (
        values
        and all(type(v) is int for v in values)
        and _I64_MIN <= min(values)
        and max(values) <= _I64_MAX
    ):
        return {"dtype": _DTYPE_I8}, dispatch("codec_pack", values, _DTYPE_I8)
    if values and all(type(v) is str for v in values):
        seen: dict[str, int] = {}
        codes = [seen.setdefault(v, len(seen)) for v in values]
        if len(seen) <= 255:
            return (
                {"dtype": _DTYPE_U1, "categories": list(seen)},
                dispatch("codec_pack", codes, _DTYPE_U1),
            )
    # Inline fallback: store exactly what the JSON-dict path would
    # have stored (json_safe is what the legacy payload went through).
    from .jobs import json_safe

    return {"dtype": _DTYPE_JSON, "data": json_safe(list(values))}, b""


def _unpack_array(
    descriptor: Mapping[str, Any], blob: bytes, offset: int, count: int
) -> tuple[np.ndarray | list[Any], int]:
    """Decode one column to its natural array; return (column, new offset)."""
    dtype = descriptor["dtype"]
    if dtype == _DTYPE_JSON:
        return list(descriptor["data"]), offset
    nbytes = count * _ITEMSIZE[dtype]
    if offset + nbytes > len(blob):
        raise ConfigurationError(
            "columnar payload blob is truncated "
            f"(need {offset + nbytes} bytes, have {len(blob)})"
        )
    raw = dispatch("codec_unpack", blob, dtype, count, offset)
    if dtype == _DTYPE_U1:
        categories = descriptor.get("categories")
        if categories == [False, True]:
            return raw.astype(bool), offset + nbytes
        if categories is None:
            raise ConfigurationError(
                "u1 column without categories in columnar payload"
            )
        if raw.size and int(raw.max()) >= len(categories):
            raise ConfigurationError(
                "columnar category code out of range"
            )
        return np.asarray(categories)[raw], offset + nbytes
    return raw, offset + nbytes


def _column_to_list(column: np.ndarray | list[Any]) -> list[Any]:
    """A decoded column as exact Python scalars (the JSON-path types)."""
    if isinstance(column, np.ndarray):
        return column.tolist()
    return list(column)


# -- payload packing -------------------------------------------------------


def pack_series(
    values: Sequence[Any],
    series: Mapping[str, Sequence[Any]],
    points_kind: str = KIND_MAPPING,
) -> dict[str, Any]:
    """Pack grid values plus per-metric series into a columnar payload.

    ``series`` maps column name to one value per grid point, the shape
    batch targets already produce — no per-point dicts are built on the
    way in.  Never fails: columns the binary dtypes cannot represent
    exactly ride along as inline ``json`` columns.
    """
    start_ns = time.perf_counter_ns()
    count = len(values)
    parts: list[bytes] = []
    values_desc, values_bytes = _pack_values(values)
    parts.append(values_bytes)
    columns: list[dict[str, Any]] = []
    for name, column in series.items():
        if len(column) != count:
            raise ConfigurationError(
                f"column {name!r} has {len(column)} values for a "
                f"{count}-point payload"
            )
        descriptor, column_bytes = _pack_values(column)
        descriptor["name"] = str(name)
        columns.append(descriptor)
        parts.append(column_bytes)
    payload = {
        "codec": CODEC_COLUMNAR,
        "format": STORAGE_FORMAT,
        "count": count,
        "points_kind": points_kind,
        "values": values_desc,
        "columns": columns,
        "blob": b"".join(parts),
    }
    registry = metrics()
    registry.count("codec.pack.calls")
    registry.count("codec.pack.points", count)
    registry.count("codec.pack.ns", time.perf_counter_ns() - start_ns)
    return payload


def series_from_points(
    points: Sequence[Any],
) -> tuple[str, dict[str, list[Any]]] | None:
    """Columnise a per-point list, or ``None`` when it will not columnise.

    Uniform mappings (every point a mapping with the same key tuple)
    become one column per key; plain scalars become a single
    :data:`SCALAR_COLUMN` column.  Anything else — ragged mappings,
    nested lists — stays on the JSON-dict path.
    """
    if not points:
        return None
    first = points[0]
    if isinstance(first, Mapping):
        names = tuple(first.keys())
        series: dict[str, list[Any]] = {name: [] for name in names}
        for point in points:
            if not isinstance(point, Mapping) or (
                tuple(point.keys()) != names
            ):
                return None
            for name in names:
                series[name].append(point[name])
        return KIND_MAPPING, series
    scalar_types = (bool, int, float, str)
    if all(
        isinstance(point, scalar_types) and not isinstance(point, Mapping)
        for point in points
    ):
        return KIND_SCALAR, {SCALAR_COLUMN: list(points)}
    return None


def pack_points(
    values: Sequence[Any], points: Sequence[Any]
) -> dict[str, Any] | None:
    """Pack a per-point list into a columnar payload (``None`` if ragged)."""
    if len(values) != len(points):
        raise ConfigurationError(
            f"{len(values)} values but {len(points)} points"
        )
    columnised = series_from_points(points)
    if columnised is None:
        return None
    points_kind, series = columnised
    return pack_series(values, series, points_kind)


def is_columnar(payload: Any) -> bool:
    """Whether a record value is a columnar payload this codec reads."""
    if not isinstance(payload, Mapping):
        return False
    if payload.get("codec") != CODEC_COLUMNAR:
        return False
    if payload.get("format") != STORAGE_FORMAT:
        raise ConfigurationError(
            f"columnar payload has storage format "
            f"{payload.get('format')!r}; this build reads format "
            f"{STORAGE_FORMAT}"
        )
    return True


def unpack_columns(
    payload: Mapping[str, Any],
) -> tuple[np.ndarray | list[Any], dict[str, np.ndarray | list[Any]], str]:
    """Decode a columnar payload straight to arrays.

    Returns ``(values, {name: column}, points_kind)``; binary columns
    come back as numpy arrays backed by the payload blob (zero copy for
    float64/int64), ``json`` columns as plain lists.
    """
    fault_site("codec.unpack")
    start_ns = time.perf_counter_ns()
    count = int(payload["count"])
    blob = payload["blob"]
    if not isinstance(blob, (bytes, bytearray)):
        raise ConfigurationError(
            "columnar payload blob is not bytes (store decode missing?)"
        )
    blob = bytes(blob)
    values, offset = _unpack_array(payload["values"], blob, 0, count)
    columns: dict[str, np.ndarray | list[Any]] = {}
    for descriptor in payload["columns"]:
        column, offset = _unpack_array(descriptor, blob, offset, count)
        columns[descriptor["name"]] = column
    registry = metrics()
    registry.count("codec.unpack.calls")
    registry.count("codec.unpack.points", count)
    registry.count("codec.unpack.ns", time.perf_counter_ns() - start_ns)
    return values, columns, str(payload.get("points_kind", KIND_MAPPING))


def unpack_points(
    payload: Mapping[str, Any],
) -> tuple[list[Any], list[Any]]:
    """Decode a columnar payload back to the JSON-dict ``(values, points)``.

    The compatibility path: exact Python scalar types, mapping key
    order preserved, bit-identical to what the JSON-dict pipeline
    would have stored.
    """
    values, columns, points_kind = unpack_columns(payload)
    values_list = _column_to_list(values)
    if points_kind == KIND_SCALAR:
        return values_list, _column_to_list(columns[SCALAR_COLUMN])
    names = list(columns)
    series = [_column_to_list(columns[name]) for name in names]
    points = [
        dict(zip(names, row)) for row in zip(*series)
    ] if names else [{} for _ in values_list]
    return values_list, points


# -- bytes across the persistence boundary ---------------------------------


def jsonable_bytes(obj: Any) -> Any:
    """Copy ``obj`` with every ``bytes`` value base64-wrapped for JSON.

    Returns ``obj`` itself (no copy) when nothing needed encoding, so
    the common no-bytes record costs a traversal and nothing else.
    """
    if isinstance(obj, (bytes, bytearray)):
        return {BYTES_KEY: base64.b64encode(bytes(obj)).decode("ascii")}
    if isinstance(obj, dict):
        out = None
        for key, value in obj.items():
            encoded = jsonable_bytes(value)
            if encoded is not value:
                if out is None:
                    out = dict(obj)
                out[key] = encoded
        return out if out is not None else obj
    if isinstance(obj, list):
        out_list = None
        for index, value in enumerate(obj):
            encoded = jsonable_bytes(value)
            if encoded is not value:
                if out_list is None:
                    out_list = list(obj)
                out_list[index] = encoded
        return out_list if out_list is not None else obj
    return obj


def restore_bytes(obj: Any) -> Any:
    """Invert :func:`jsonable_bytes` after a JSON load."""
    if isinstance(obj, dict):
        if len(obj) == 1 and BYTES_KEY in obj:
            encoded = obj[BYTES_KEY]
            if isinstance(encoded, str):
                return base64.b64decode(encoded.encode("ascii"))
        out = None
        for key, value in obj.items():
            decoded = restore_bytes(value)
            if decoded is not value:
                if out is None:
                    out = dict(obj)
                out[key] = decoded
        return out if out is not None else obj
    if isinstance(obj, list):
        out_list = None
        for index, value in enumerate(obj):
            decoded = restore_bytes(value)
            if decoded is not value:
                if out_list is None:
                    out_list = list(obj)
                out_list[index] = decoded
        return out_list if out_list is not None else obj
    return obj


def extract_blob(record: Mapping[str, Any]) -> tuple[Any, bytes | None]:
    """Lift every ``bytes`` value out of ``record`` into one buffer.

    Returns ``(jsonable_record, blob)``: bytes values are replaced with
    ``{"@blob": [offset, length]}`` references into the concatenated
    buffer (``None`` when the record carries no bytes).  The SQLite
    backend stores the buffer in a native BLOB column so binary
    payloads never pay a base64 tax.
    """
    parts: list[bytes] = []
    offset = 0

    def walk(obj: Any) -> Any:
        nonlocal offset
        if isinstance(obj, (bytes, bytearray)):
            data = bytes(obj)
            reference = {BLOB_KEY: [offset, len(data)]}
            parts.append(data)
            offset += len(data)
            return reference
        if isinstance(obj, dict):
            out = None
            for key, value in obj.items():
                walked = walk(value)
                if walked is not value:
                    if out is None:
                        out = dict(obj)
                    out[key] = walked
            return out if out is not None else obj
        if isinstance(obj, list):
            out_list = None
            for index, value in enumerate(obj):
                walked = walk(value)
                if walked is not value:
                    if out_list is None:
                        out_list = list(obj)
                    out_list[index] = walked
            return out_list if out_list is not None else obj
        return obj

    jsonable = walk(dict(record))
    return jsonable, b"".join(parts) if parts else None


def inject_blob(record: Any, blob: bytes | None) -> Any:
    """Invert :func:`extract_blob` when decoding a SQLite row."""
    if blob is None:
        return record

    def walk(obj: Any) -> Any:
        if isinstance(obj, dict):
            if len(obj) == 1 and BLOB_KEY in obj:
                reference = obj[BLOB_KEY]
                if (
                    isinstance(reference, list)
                    and len(reference) == 2
                    and all(isinstance(v, int) for v in reference)
                ):
                    start, length = reference
                    return blob[start : start + length]
            out = None
            for key, value in obj.items():
                walked = walk(value)
                if walked is not value:
                    if out is None:
                        out = dict(obj)
                    out[key] = walked
            return out if out is not None else obj
        if isinstance(obj, list):
            out_list = None
            for index, value in enumerate(obj):
                walked = walk(value)
                if walked is not value:
                    if out_list is None:
                        out_list = list(obj)
                    out_list[index] = walked
            return out_list if out_list is not None else obj
        return obj

    return walk(record)


# -- store introspection ---------------------------------------------------


def payload_kind(record: Mapping[str, Any]) -> str:
    """Classify one store record for ``repro store info`` breakdowns.

    Kinds: ``columnar-block`` (merged point blocks), ``columnar-shard``
    (shard payloads in the binary codec), ``shard-json`` (legacy shard
    payloads), ``point`` (legacy per-point records), ``job`` (campaign
    job results), ``other``.
    """
    value = record.get("value")
    if isinstance(value, Mapping):
        if value.get("codec") == CODEC_COLUMNAR:
            return (
                "columnar-block" if "block" in value else "columnar-shard"
            )
        if "values" in value and "points" in value:
            return "shard-json"
    if "kind" in record:
        return "job"
    if "target" not in record and "kind" not in record:
        job_id = record.get("job_id")
        if isinstance(job_id, str) and job_id.endswith("]"):
            return "point"
    return "other"


def column_to_array(column: Any) -> np.ndarray | list[Any]:
    """A decoded-or-legacy column as its natural typed array.

    Uniform float/int/bool/str columns become numpy arrays (what
    decoding the same data from a columnar payload would return);
    anything else stays a list.  Used to upconvert legacy JSON-dict
    payloads so array consumers see one shape regardless of how the
    store was written.
    """
    if isinstance(column, np.ndarray):
        return column
    column = list(column)
    if column and all(type(v) is float for v in column):
        return np.asarray(column, dtype=np.float64)
    if column and all(type(v) is bool for v in column):
        return np.asarray(column, dtype=bool)
    if (
        column
        and all(type(v) is int for v in column)
        and _I64_MIN <= min(column)
        and max(column) <= _I64_MAX
    ):
        return np.asarray(column, dtype=np.int64)
    if column and all(type(v) is str for v in column):
        return np.asarray(column)
    return column


def concat_columns(
    segments: Iterable[np.ndarray | list[Any]],
) -> np.ndarray | list[Any]:
    """Concatenate decoded column segments, staying array-native."""
    parts = list(segments)
    if not parts:
        return []
    if all(isinstance(part, np.ndarray) for part in parts):
        arrays = [part for part in parts if isinstance(part, np.ndarray)]
        return arrays[0] if len(arrays) == 1 else np.concatenate(arrays)
    merged: list[Any] = []
    for part in parts:
        merged.extend(
            part.tolist() if isinstance(part, np.ndarray) else part
        )
    return merged
