"""Content-addressed memoization of job results.

The cache maps a :class:`~repro.runner.jobs.JobSpec` content key to its
latest successful record.  A hit short-circuits execution entirely — the
queue resolves the job as ``"cached"`` without touching a worker — which
is what makes an unchanged campaign re-run near-instant and an
interrupted campaign resumable from its persisted prefix.

Backed by an optional :class:`~repro.runner.store.ResultStore`: with a
store the cache survives process restarts; without one it still
deduplicates identical jobs within a single run.

Stored records carry a provenance stamp
(:mod:`repro.runner.provenance`: package version + reference-config
content hash).  At preload the cache drops records whose stamp differs
from the running interpreter's — results computed by older model code
are *stale* and re-executed rather than served, which is what makes a
version bump or a Table I constant change safely invalidate history.
"""

from __future__ import annotations

from typing import Any

from .jobs import STATUS_CACHED, STATUS_OK, JobResult, JobSpec
from .provenance import is_current, stamp_record
from .store import ResultStore


class ResultCache:
    """In-memory content-addressed cache, optionally store-backed.

    Parameters
    ----------
    store:
        Persistent backing store.  On construction the cache preloads
        the store's latest ``ok`` record per key; on :meth:`put` it
        appends the new record so the next process sees it.
    check_provenance:
        When true (the default), preloaded records with a missing or
        mismatched provenance stamp are discarded as stale instead of
        served as hits.  Pass ``False`` to trust every stored record,
        e.g. when replaying archived histories read-only.
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        check_provenance: bool = True,
    ):
        self._store = store
        self._records: dict[str, dict[str, Any]] = {}
        self.stale = 0
        if store is not None:
            preloaded = store.latest_by_key()
            if check_provenance:
                self._records = {
                    key: record
                    for key, record in preloaded.items()
                    if is_current(record)
                }
                self.stale = len(preloaded) - len(self._records)
            else:
                self._records = preloaded
        self.hits = 0
        self.misses = 0
        self.puts = 0

    @property
    def store(self) -> ResultStore | None:
        """The backing store, if any."""
        return self._store

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def lookup(self, spec: JobSpec) -> JobResult | None:
        """Cached result for ``spec``'s content key, or ``None``.

        A hit is returned with status ``"cached"``, zero attempts, and
        the *stored* (JSON-safe) value — the scalars are bit-identical
        to the original because JSON round-trips floats exactly.
        """
        record = self._records.get(spec.key)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return JobResult(
            job_id=spec.job_id,
            key=spec.key,
            status=STATUS_CACHED,
            value=record.get("value"),
        )

    def put(self, spec: JobSpec, result: JobResult) -> None:
        """Memoize a successful result (failures are never cached)."""
        if result.status != STATUS_OK:
            return
        record = stamp_record(result.to_record(spec))
        self._records[spec.key] = record
        self.puts += 1
        if self._store is not None:
            self._store.append(record)

    def forget(self, key: str) -> None:
        """Drop one key from the in-memory view (store is append-only)."""
        self._records.pop(key, None)

    def stats(self) -> dict[str, int]:
        """Hit/miss/put/stale counters plus current size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "stale": self.stale,
            "size": len(self._records),
        }
