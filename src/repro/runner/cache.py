"""Content-addressed memoization of job results.

The cache maps a :class:`~repro.runner.jobs.JobSpec` content key to its
latest successful record.  A hit short-circuits execution entirely — the
queue resolves the job as ``"cached"`` without touching a worker — which
is what makes an unchanged campaign re-run near-instant and an
interrupted campaign resumable from its persisted prefix.

Backed by an optional :class:`~repro.runner.store.ResultStore`: with a
store the cache survives process restarts; without one it still
deduplicates identical jobs within a single run.

Stored records carry a provenance stamp
(:mod:`repro.runner.provenance`: package version + reference-config
content hash).  Wherever a record enters the in-memory view — eager
preload, key-filtered preload, or a lazy on-demand fetch — the cache
drops records whose stamp differs from the running interpreter's:
results computed by older model code are *stale* and re-executed
rather than served, which is what makes a version bump or a Table I
constant change safely invalidate history.

Preload is configurable (``preload="all" | "lazy" | iterable of
keys``) so a store that also holds millions of per-point sweep records
never has to be materialised just to resolve a campaign's handful of
content keys.

Payload formats are transparent here: the backends hand records back
with binary column payloads (:mod:`repro.runner.codec`) restored to
real ``bytes``, so a columnar shard record caches, round-trips, and
re-serves exactly like a JSON-dict one.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..errors import ConfigurationError
from ..telemetry import metrics
from .jobs import STATUS_CACHED, STATUS_OK, JobResult, JobSpec
from .provenance import is_current, stamp_record
from .store import ResultStore

#: Preload the store's whole latest-``ok``-per-key view (the default).
PRELOAD_ALL = "all"
#: Preload nothing; resolve keys against the store on first lookup.
PRELOAD_LAZY = "lazy"


class ResultCache:
    """In-memory content-addressed cache, optionally store-backed.

    Parameters
    ----------
    store:
        Persistent backing store.  On :meth:`put` the cache appends the
        new record so the next process sees it.
    check_provenance:
        When true (the default), records with a missing or mismatched
        provenance stamp are discarded as stale instead of served as
        hits.  Pass ``False`` to trust every stored record, e.g. when
        replaying archived histories read-only.
    preload:
        What to pull into memory up front:

        * ``"all"`` (default) — the store's latest ``ok`` record per
          key, streamed once; matches the historical behaviour,
        * ``"lazy"`` — nothing; each first lookup of a key consults the
          store directly (an O(log n) indexed get on SQLite) and
          memoizes the answer, so a store holding millions of
          per-point sweep records costs nothing until a key is asked
          for,
        * an iterable of content keys — only those keys are resolved
          (the *point-range* mode: a campaign preloads exactly its own
          spec keys and skips every other record in the history).
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        check_provenance: bool = True,
        preload: str | Iterable[str] = PRELOAD_ALL,
    ):
        self._store = store
        self._records: dict[str, dict[str, Any]] = {}
        self._check_provenance = check_provenance
        self._lazy = False
        #: Keys already resolved against the store without a usable
        #: record (absent, stale, or forgotten) — never re-fetched.
        self._missing: set[str] = set()
        self.stale = 0
        if store is None:
            if isinstance(preload, str) and preload not in (
                PRELOAD_ALL,
                PRELOAD_LAZY,
            ):
                raise ConfigurationError(
                    f"unknown cache preload mode {preload!r}"
                )
        elif preload == PRELOAD_ALL:
            for record in store.iter_latest_by_key():
                self._admit(record["key"], record)
        elif preload == PRELOAD_LAZY:
            self._lazy = True
        elif isinstance(preload, str):
            raise ConfigurationError(
                f"unknown cache preload mode {preload!r}"
            )
        else:
            self._preload_keys(set(preload))
        self.hits = 0
        self.misses = 0
        self.puts = 0

    def _admit(self, key: str, record: dict[str, Any] | None) -> bool:
        """Accept one store record into the in-memory view (or not)."""
        if record is None:
            return False
        if self._check_provenance and not is_current(record):
            self.stale += 1
            metrics().count("cache.invalidated")
            return False
        self._records[key] = record
        return True

    def _preload_keys(self, wanted: set[str]) -> None:
        """Resolve exactly ``wanted`` from the store, nothing else.

        SQLite answers each key from its covering index; the JSONL
        backend streams the history once, keeping only wanted winners —
        either way memory is bounded by ``wanted``, not by the store.
        """
        if self._store is None or not wanted:
            return
        if self._store.backend_name == "sqlite":
            for key in wanted:
                self._admit(key, self._store.get(key))
            return
        pending: dict[str, dict[str, Any]] = {}
        for record in self._store.iter_latest_by_key():
            if record["key"] in wanted:
                pending[record["key"]] = record
        for key, record in pending.items():
            self._admit(key, record)

    @property
    def store(self) -> ResultStore | None:
        """The backing store, if any."""
        return self._store

    def __len__(self) -> int:
        """Records currently held in memory (not the store's key count)."""
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        """Whether ``key`` is in the in-memory view (lazy keys appear
        only after their first successful lookup)."""
        return key in self._records

    def lookup(self, spec: JobSpec) -> JobResult | None:
        """Cached result for ``spec``'s content key, or ``None``.

        A hit is returned with status ``"cached"``, zero attempts, and
        the *stored* (JSON-safe) value — the scalars are bit-identical
        to the original because JSON round-trips floats exactly.  In
        lazy mode a first miss consults the backing store and memoizes
        whatever it finds (including the absence).
        """
        record = self._records.get(spec.key)
        if (
            record is None
            and self._lazy
            and self._store is not None
            and spec.key not in self._missing
        ):
            if self._admit(spec.key, self._store.get(spec.key)):
                record = self._records[spec.key]
            else:
                self._missing.add(spec.key)
        if record is None:
            self.misses += 1
            metrics().count("cache.miss")
            return None
        self.hits += 1
        metrics().count("cache.hit")
        return JobResult(
            job_id=spec.job_id,
            key=spec.key,
            status=STATUS_CACHED,
            value=record.get("value"),
        )

    def put(self, spec: JobSpec, result: JobResult) -> None:
        """Memoize a successful result (failures are never cached)."""
        if result.status != STATUS_OK:
            return
        record = stamp_record(result.to_record(spec))
        self._records[spec.key] = record
        self._missing.discard(spec.key)
        self.puts += 1
        metrics().count("cache.put")
        if self._store is not None:
            self._store.append(record)

    def forget(self, key: str) -> None:
        """Drop one key from the in-memory view (store is append-only).

        In lazy mode the key is also pinned as missing, so a later
        lookup does not quietly resurrect the forgotten record from the
        store.
        """
        self._records.pop(key, None)
        if self._lazy:
            self._missing.add(key)

    def stats(self) -> dict[str, int]:
        """Hit/miss/put/stale counters plus current size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "stale": self.stale,
            "size": len(self._records),
        }
