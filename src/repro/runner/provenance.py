"""Provenance stamps: which code and configuration produced a record.

Every record appended through :class:`~repro.runner.store.ResultStore`
is stamped with the package version and a content hash of the paper's
reference configuration (Table I device, workload, disk comparator,
DRAM buffer).  :class:`~repro.runner.cache.ResultCache` compares the
stamp against the current interpreter's and refuses to serve records
produced by older model code or different reference constants — a
cached number is only a valid shortcut if re-running the job would
reproduce it.

Records written before provenance existed carry no stamp and are also
treated as stale: current code always stamps, so an unstamped record is
by definition from an older release.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Any, Mapping

from .jobs import canonical_json

#: Record fields carrying the stamp.
VERSION_FIELD = "repro_version"
CONFIG_FIELD = "config_hash"


def repro_version() -> str:
    """The running package version (lazy to avoid an import cycle)."""
    from .. import __version__

    return __version__


@lru_cache(maxsize=1)
def config_content_hash() -> str:
    """Short content hash of the paper's reference configuration.

    Hashes the canonical-JSON rendering of every default config
    factory, so editing a Table I constant (or adding a config field)
    changes the hash and invalidates previously cached results even
    without a version bump.
    """
    from ..config import (
        disk_18inch,
        ibm_mems_prototype,
        micron_ddr_dram,
        table1_workload,
    )

    payload = canonical_json(
        {
            "device": ibm_mems_prototype(),
            "disk": disk_18inch(),
            "dram": micron_ddr_dram(),
            "workload": table1_workload(),
        }
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def provenance_stamp() -> dict[str, str]:
    """The stamp current code writes into every stored record."""
    return {
        VERSION_FIELD: repro_version(),
        CONFIG_FIELD: config_content_hash(),
    }


def stamp_record(record: Mapping[str, Any]) -> dict[str, Any]:
    """Copy ``record`` with the current stamp (existing stamps win).

    Existing values are preserved so migrations and replays never
    launder an old record into looking current.
    """
    stamped = dict(record)
    for field, value in provenance_stamp().items():
        stamped.setdefault(field, value)
    return stamped


def is_current(record: Mapping[str, Any]) -> bool:
    """Whether ``record`` was produced by the running code and config."""
    return (
        record.get(VERSION_FIELD) == repro_version()
        and record.get(CONFIG_FIELD) == config_content_hash()
    )
