"""Dependency-aware job scheduler with retries and a process pool.

:func:`run_jobs` takes a batch of :class:`~repro.runner.jobs.JobSpec`
and executes them respecting ``after`` dependencies, retrying failures
up to each spec's budget, consulting an optional content-addressed
cache, and emitting :class:`JobEvent` notifications to observers.

Resilience: every attempt may carry a wall-clock **deadline**
(``JobSpec.deadline_s``, or the ``REPRO_JOB_DEADLINE_S`` environment
default) — an attempt that outlives it is abandoned, emits a
``timeout`` event, and is charged against the retry budget, so one
hung job can never wedge a campaign.  Retries wait an exponentially
growing, fully jittered **backoff** (``JobSpec.retry_backoff_s``),
seedable per run for deterministic tests.  The scheduler also hosts
the ``queue.attempt`` fault-injection site (:mod:`repro.faults`):
``run_jobs(..., faults=...)`` activates a plan for the run, exported
to pool workers through the environment.

``jobs=1`` runs everything serially in-process (no pickling, easiest to
debug); ``jobs>1`` fans ready jobs out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Both paths share the
same bookkeeping, produce the same results, and schedule ready jobs in
the stable order the specs were given, so a parallel campaign is a
faithful — bit-identical — replay of the serial one.

Events travel over the :class:`~repro.runner.events.EventBus`: every
run publishes a stamped :class:`~repro.runner.events.Event` stream
(sequence numbers, timestamps, run id) and observers are just bus
subscribers.  Telemetry rides the same machinery in reverse — pool
workers record metrics/spans into their own process-global registries
and ship the delta back piggybacked on the result tuple, which
:meth:`_Run.resolve` merges into the parent's registries, so a
parallel campaign aggregates observability without extra IPC.
"""

from __future__ import annotations

import os
import random
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..errors import ConfigurationError
from ..faults import (
    FaultPlan,
    active_faults,
    coerce_plan,
    fault_site,
    faults_active,
)
from ..telemetry import metrics, recorder, span
from .cache import ResultCache
from .events import (
    EVENT_CACHED,
    EVENT_FAILED,
    EVENT_FINISHED,
    EVENT_RETRY,
    EVENT_SCHEDULED,
    EVENT_SKIPPED,
    EVENT_STARTED,
    EVENT_TIMEOUT,
    Event,
    EventBus,
    JobEvent,
)
from .jobs import (
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    JobResult,
    JobSpec,
    execute,
)

__all__ = [
    "EVENT_CACHED",
    "EVENT_FAILED",
    "EVENT_FINISHED",
    "EVENT_RETRY",
    "EVENT_SCHEDULED",
    "EVENT_SKIPPED",
    "EVENT_STARTED",
    "EVENT_TIMEOUT",
    "Event",
    "EventBus",
    "Executor",
    "JobEvent",
    "Observer",
    "parallel_map",
    "run_jobs",
    "topological_order",
]

Observer = Callable[["JobEvent"], None]
Executor = Callable[[JobSpec], Any]
#: Cooperative cancellation probe: return True to stop scheduling.
#: A ``threading.Event``'s bound ``is_set`` method fits directly.
CancelCheck = Callable[[], bool]

#: Error text stamped on jobs skipped by a cancellation request.
CANCELLED_ERROR = "cancelled"

#: Environment variable supplying a default per-attempt deadline for
#: specs that set none (``JobSpec.deadline_s`` wins when present).
DEADLINE_ENV_VAR = "REPRO_JOB_DEADLINE_S"

#: Ceiling on any single jittered backoff delay, seconds.
BACKOFF_CAP_S = 30.0


class _DeadlineExceeded(Exception):
    """Internal marker: an attempt outlived its wall-clock deadline."""

    def __init__(self, deadline_s: float):
        super().__init__(f"deadline exceeded ({deadline_s:g}s)")
        self.deadline_s = deadline_s


def _env_deadline() -> float | None:
    """The :data:`DEADLINE_ENV_VAR` default deadline, validated."""
    raw = os.environ.get(DEADLINE_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{DEADLINE_ENV_VAR} must be a number of seconds, got {raw!r}"
        ) from None
    if not value > 0:
        raise ConfigurationError(
            f"{DEADLINE_ENV_VAR} must be positive, got {raw!r}"
        )
    return value


def _backoff_delay(
    spec: JobSpec, attempt: int, rng: random.Random
) -> float:
    """Full-jitter exponential backoff before retrying ``spec``.

    ``attempt`` is the 1-based attempt that just failed; the delay is
    uniform in ``[0, min(cap, base * 2**(attempt-1))]`` — the classic
    "full jitter" scheme, which decorrelates retry storms better than
    equal or decorrelated jitter at the same mean delay.
    """
    base = spec.retry_backoff_s
    if base <= 0:
        return 0.0
    ceiling = min(BACKOFF_CAP_S, base * (2.0 ** (attempt - 1)))
    return rng.uniform(0.0, ceiling)


def topological_order(specs: Sequence[JobSpec]) -> list[JobSpec]:
    """Stable topological order of ``specs`` by their ``after`` edges.

    Raises :class:`~repro.errors.ConfigurationError` on duplicate ids,
    unknown dependencies, or cycles.  Stability: among ready jobs, the
    original sequence order is preserved (Kahn's algorithm with a
    FIFO ready list).
    """
    by_id: dict[str, JobSpec] = {}
    for spec in specs:
        if spec.job_id in by_id:
            raise ConfigurationError(f"duplicate job id {spec.job_id!r}")
        by_id[spec.job_id] = spec
    dependents: dict[str, list[str]] = {spec.job_id: [] for spec in specs}
    missing: dict[str, int] = {}
    for spec in specs:
        for dep in spec.after:
            if dep not in by_id:
                raise ConfigurationError(
                    f"job {spec.job_id!r} depends on unknown job {dep!r}"
                )
            dependents[dep].append(spec.job_id)
        missing[spec.job_id] = len(spec.after)
    ready = [spec.job_id for spec in specs if missing[spec.job_id] == 0]
    order: list[JobSpec] = []
    cursor = 0
    while cursor < len(ready):
        job_id = ready[cursor]
        cursor += 1
        order.append(by_id[job_id])
        for dependent in dependents[job_id]:
            missing[dependent] -= 1
            if missing[dependent] == 0:
                ready.append(dependent)
    if len(order) != len(specs):
        cyclic = sorted(set(by_id) - {spec.job_id for spec in order})
        raise ConfigurationError(
            f"dependency cycle among jobs: {', '.join(cyclic)}"
        )
    return order


def _attempt(
    spec: JobSpec, executor: Executor, attempt: int = 0
) -> tuple[Any, float, int]:
    """Run one attempt, returning ``(value, duration_s, pid)``.

    The ``queue.attempt`` fault site exposes ``"<job_id>#<attempt>"``
    as its job-id context: fault rules can target every attempt of a
    job (``"shard-3#*"``), or exactly one (``"shard-3#1"``) — the only
    trigger shape that stays deterministic across worker replacement,
    since per-rule ``nth`` counters are per-process and a crashed
    worker's replacement starts counting from zero.
    """
    fault_site("queue.attempt", f"{spec.job_id}#{attempt}")
    start = time.perf_counter()
    with span("job.execute", cat="queue", job_id=spec.job_id):
        value = executor(spec)
    return value, time.perf_counter() - start, os.getpid()


def _attempt_with_deadline(
    spec: JobSpec,
    executor: Executor,
    deadline: float | None,
    attempt: int = 0,
) -> tuple[Any, float, int]:
    """Serial attempt under a wall-clock watchdog.

    With no deadline this is :func:`_attempt` unchanged (no thread).
    Otherwise the attempt runs on a daemon thread the caller waits on
    for at most ``deadline`` seconds; on expiry the thread is abandoned
    (it cannot be killed, but it no longer blocks the campaign) and
    :class:`_DeadlineExceeded` is raised.  A late result from an
    abandoned attempt is discarded, never resolved.
    """
    if deadline is None:
        return _attempt(spec, executor, attempt)
    box: list[tuple[str, Any]] = []

    def _target() -> None:
        try:
            box.append(("ok", _attempt(spec, executor, attempt)))
        except BaseException as error:  # noqa: BLE001 - relayed to caller
            box.append(("err", error))

    watchdog = threading.Thread(
        target=_target, name=f"attempt-{spec.job_id}", daemon=True
    )
    watchdog.start()
    watchdog.join(deadline)
    if watchdog.is_alive() or not box:
        raise _DeadlineExceeded(deadline)
    status, payload = box[0]
    if status == "err":
        raise payload
    return payload


def _telemetry_marks() -> tuple[dict[str, Any], int]:
    """Worker-side pre-attempt marks for the piggyback delta."""
    return metrics().snapshot(), recorder().mark()


def _telemetry_delta(
    marks: tuple[dict[str, Any], int]
) -> dict[str, Any] | None:
    """What this process recorded since ``marks`` (None when empty)."""
    snapshot, span_mark = marks
    delta = metrics().delta_since(snapshot)
    spans = recorder().delta_since(span_mark)
    if not (delta["counters"] or delta["histograms"] or spans):
        return None
    return {"metrics": delta, "spans": spans}


def _pool_attempt(
    spec: JobSpec, attempt: int = 0
) -> tuple[Any, float, int, Any]:
    """Module-level worker entry point (picklable by reference).

    Returns ``(value, duration_s, pid, telemetry)`` — the fourth slot
    carries the worker's metrics/spans delta for this attempt, merged
    into the parent's registries when the result resolves.
    """
    marks = _telemetry_marks()
    value, duration, pid = _attempt(spec, execute, attempt)
    return value, duration, pid, _telemetry_delta(marks)


def _pool_custom_attempt(
    spec: JobSpec, executor: Executor, attempt: int = 0
) -> tuple[Any, float, int, Any]:
    """Worker entry point for a custom (picklable) executor."""
    marks = _telemetry_marks()
    value, duration, pid = _attempt(spec, executor, attempt)
    return value, duration, pid, _telemetry_delta(marks)


def _warm_worker() -> None:
    """Process-pool initializer: build the reference models once.

    Runs in each worker before its first job so sweep shards start
    computing immediately instead of rebuilding the Table I config and
    model stack per call.  Warmup is best-effort — a failure here must
    never poison the pool, the job itself will surface any real error.
    """
    try:
        from ..core.batch import warm_reference_models

        warm_reference_models()
    except Exception:  # noqa: BLE001 - warmup is strictly best-effort
        pass


def _make_pool(max_workers: int) -> ProcessPoolExecutor:
    """A process pool whose workers pre-build the reference models."""
    return ProcessPoolExecutor(
        max_workers=max_workers, initializer=_warm_worker
    )


def _abandon_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting for hung workers.

    ``ProcessPoolExecutor`` has no per-task cancellation once a worker
    is executing, so an expired deadline means replacing the pool:
    terminate every worker (hung ones included — that is the point),
    then shut down without blocking.  The executor machinery treats
    the terminations like any other abrupt worker death and unwinds
    cleanly; a later ``shutdown(wait=True)`` from a context manager
    only joins already-dead processes.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    for process in processes:
        process.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


class _Run:
    """Shared bookkeeping for one :func:`run_jobs` invocation."""

    def __init__(
        self,
        specs: Sequence[JobSpec],
        cache: ResultCache | None,
        observers: Sequence[Observer],
        run_id: str = "",
        bus: EventBus | None = None,
        cancel: CancelCheck | None = None,
        backoff_seed: int | None = None,
    ):
        self.order = topological_order(specs)
        self.default_deadline = _env_deadline()
        #: One rng for every backoff draw in the run: seeded, the whole
        #: retry schedule is reproducible; unseeded, delays decorrelate
        #: across concurrent campaigns (what production wants).
        self.backoff_rng = random.Random(backoff_seed)
        self.by_id = {spec.job_id: spec for spec in self.order}
        self.dependents: dict[str, list[str]] = {
            spec.job_id: [] for spec in self.order
        }
        for spec in self.order:
            for dep in spec.after:
                self.dependents[dep].append(spec.job_id)
        self.cache = cache
        self.cancel = cancel
        self.bus = bus if bus is not None else EventBus(run_id=run_id)
        for observer in observers:
            self.bus.subscribe(observer)
        self.results: dict[str, JobResult] = {}
        #: Run-local successful result per content key, so duplicate
        #: specs resolve as "cached" deterministically (and with the
        #: live value) whether the run is serial or parallel.
        self.done_by_key: dict[str, JobResult] = {}
        self.total = len(self.order)
        for spec in self.order:
            self._event(EVENT_SCHEDULED, spec.job_id)

    def _event(self, kind: str, job_id: str, **kwargs: Any) -> None:
        if kind == EVENT_RETRY:
            metrics().count("queue.retries")
        self.bus.publish(
            kind,
            job_id,
            total=self.total,
            done=len(self.results),
            **kwargs,
        )

    def resolve(self, result: JobResult) -> None:
        """Record a terminal result and emit its event.

        A result carrying a worker telemetry delta (pool attempts)
        has it merged into the parent's registries here, exactly once.
        """
        if result.telemetry is not None:
            metrics().merge(
                result.telemetry.get("metrics", {}),
                worker_pid=result.worker_pid,
            )
            recorder().absorb(result.telemetry.get("spans", ()))
        self.results[result.job_id] = result
        kind = {
            STATUS_OK: EVENT_FINISHED,
            STATUS_FAILED: EVENT_FAILED,
            STATUS_SKIPPED: EVENT_SKIPPED,
        }.get(result.status, EVENT_CACHED)
        if result.status == STATUS_OK:
            metrics().observe("queue.job_s", result.duration_s)
        self._event(
            kind,
            result.job_id,
            attempt=result.attempts,
            duration_s=result.duration_s,
            error=result.error,
        )
        if result.succeeded and result.key not in self.done_by_key:
            self.done_by_key[result.key] = result
        if self.cache is not None and result.status == STATUS_OK:
            self.cache.put(self.by_id[result.job_id], result)

    def deadline_for(self, spec: JobSpec) -> float | None:
        """Effective per-attempt deadline: spec first, then env default."""
        if spec.deadline_s is not None:
            return spec.deadline_s
        return self.default_deadline

    def backoff_delay(self, spec: JobSpec, attempt: int) -> float:
        """Draw (and record) the jittered delay before the next retry."""
        delay = _backoff_delay(spec, attempt, self.backoff_rng)
        if delay > 0:
            metrics().observe("queue.backoff_s", delay)
        return delay

    def timed_out(self, spec: JobSpec, attempt: int) -> str:
        """Account one expired attempt; returns its error text."""
        deadline = self.deadline_for(spec)
        error_text = f"deadline exceeded ({deadline:g}s)"
        metrics().count("queue.timeouts")
        self._event(
            EVENT_TIMEOUT,
            spec.job_id,
            attempt=attempt,
            duration_s=float(deadline or 0.0),
            error=error_text,
        )
        return error_text

    def cancelled(self) -> bool:
        """Whether the cancellation probe (if any) has fired."""
        return self.cancel is not None and bool(self.cancel())

    def skip_cancelled(self, spec: JobSpec) -> None:
        """Resolve one not-yet-started spec as skipped by cancellation."""
        self.resolve(
            JobResult(
                job_id=spec.job_id,
                key=spec.key,
                status=STATUS_SKIPPED,
                error=CANCELLED_ERROR,
            )
        )

    def deps_resolved(self, spec: JobSpec) -> bool:
        return all(dep in self.results for dep in spec.after)

    def failed_dep(self, spec: JobSpec) -> str | None:
        for dep in spec.after:
            result = self.results.get(dep)
            if result is not None and not result.succeeded:
                return dep
        return None

    def skip(self, spec: JobSpec, dep: str) -> None:
        self.resolve(
            JobResult(
                job_id=spec.job_id,
                key=spec.key,
                status=STATUS_SKIPPED,
                error=f"dependency {dep!r} did not succeed",
            )
        )

    def from_cache(self, spec: JobSpec) -> bool:
        """Try to resolve ``spec`` from memo state; True on a hit.

        Run-local results win over the external cache so a duplicate
        spec in the same run reuses the live value just produced.
        """
        prior = self.done_by_key.get(spec.key)
        if prior is not None:
            self.resolve(
                JobResult(
                    job_id=spec.job_id,
                    key=spec.key,
                    status=STATUS_CACHED,
                    value=prior.value,
                )
            )
            return True
        if self.cache is None:
            return False
        hit = self.cache.lookup(spec)
        if hit is None:
            return False
        self.resolve(hit)
        return True


def run_jobs(
    specs: Iterable[JobSpec],
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    observers: Sequence[Observer] = (),
    executor: Executor = execute,
    run_id: str = "",
    bus: EventBus | None = None,
    cancel: CancelCheck | None = None,
    backoff_seed: int | None = None,
    faults: FaultPlan | str | Mapping[str, Any] | None = None,
) -> dict[str, JobResult]:
    """Execute a batch of job specs; return results keyed by job id.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` executes serially in this process;
        ``N > 1`` uses a process pool (specs and values must pickle).
    cache:
        Optional content-addressed cache consulted before execution and
        updated after success.
    observers:
        Callables receiving every :class:`JobEvent` (subscribed to the
        run's event bus).
    executor:
        The per-spec execution function — injectable for tests.  With
        ``jobs > 1`` the default :func:`~repro.runner.jobs.execute` is
        resolved inside each worker; a custom executor must itself be
        picklable.
    run_id:
        Identifier stamped into every published event (ignored when an
        explicit ``bus`` is given).
    bus:
        An existing :class:`~repro.runner.events.EventBus` to publish
        on — lets a caller share one stamped stream (and its sequence
        numbers) across several ``run_jobs`` invocations.
    cancel:
        Cooperative cancellation probe, polled between scheduling
        decisions (pass a ``threading.Event``'s ``is_set``).  Once it
        returns True no further job starts: every not-yet-started spec
        resolves as skipped with error ``"cancelled"`` (emitting its
        terminal event); attempts already executing finish normally and
        keep their results.
    backoff_seed:
        Seed for the run's retry-backoff jitter.  ``None`` (default)
        draws from entropy; a fixed seed makes the whole retry
        schedule reproducible for tests.
    faults:
        Optional fault-injection plan for this run — a
        :class:`~repro.faults.FaultPlan`, a plan mapping, inline JSON,
        or a plan-file path (see :func:`~repro.faults.coerce_plan`).
        Activated for the duration of the call and exported through
        ``REPRO_FAULTS`` so pool workers inherit it.  Jobs already
        honouring ``REPRO_FAULTS`` from the environment need nothing
        here.
    """
    spec_list = list(specs)
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if faults is None:
        # A malformed REPRO_FAULTS plan must fail the run up front,
        # not surface as a per-job failure at the first probe.
        faults_active()
    with active_faults(coerce_plan(faults)):
        run = _Run(
            spec_list, cache, observers, run_id=run_id, bus=bus,
            cancel=cancel, backoff_seed=backoff_seed,
        )
        if not run.order:
            return {}
        if jobs == 1:
            _run_serial(run, executor)
        else:
            _run_pool(run, jobs, executor)
        return run.results


def _execute_with_retries(
    run: _Run, spec: JobSpec, executor: Executor
) -> None:
    """Serial path: attempt (with retries) and resolve one spec.

    One counter (``attempt``) drives the loop, the events, and the
    final result's ``attempts`` field — it can never disagree with
    itself the way a loop index plus a recomputed ``retries + 1``
    could.
    """
    error_text = ""
    duration = 0.0
    deadline = run.deadline_for(spec)
    attempt = 0
    while attempt <= spec.retries:
        attempt += 1
        run._event(EVENT_STARTED, spec.job_id, attempt=attempt)
        try:
            value, duration, pid = _attempt_with_deadline(
                spec, executor, deadline, attempt
            )
        except _DeadlineExceeded:
            error_text = run.timed_out(spec, attempt)
        except Exception as error:  # noqa: BLE001 - jobs may raise anything
            error_text = f"{type(error).__name__}: {error}"
        else:
            run.resolve(
                JobResult(
                    job_id=spec.job_id,
                    key=spec.key,
                    status=STATUS_OK,
                    value=value,
                    attempts=attempt,
                    duration_s=duration,
                    worker_pid=pid,
                )
            )
            return
        if attempt <= spec.retries:
            run._event(
                EVENT_RETRY, spec.job_id, attempt=attempt,
                error=error_text,
            )
            delay = run.backoff_delay(spec, attempt)
            if delay > 0:
                time.sleep(delay)
    run.resolve(
        JobResult(
            job_id=spec.job_id,
            key=spec.key,
            status=STATUS_FAILED,
            error=error_text,
            attempts=attempt,
            duration_s=duration,
        )
    )


def _run_serial(run: _Run, executor: Executor) -> None:
    for spec in run.order:
        if run.cancelled():
            run.skip_cancelled(spec)
            continue
        failed = run.failed_dep(spec)
        if failed is not None:
            run.skip(spec, failed)
            continue
        if run.from_cache(spec):
            continue
        _execute_with_retries(run, spec, executor)


def _run_pool(run: _Run, jobs: int, executor: Executor) -> None:
    """Fan ready jobs out over a process pool as dependencies resolve.

    A worker dying hard (segfault, OOM kill) breaks the whole
    :class:`ProcessPoolExecutor`, which poisons every in-flight future
    with :class:`BrokenProcessPool` — the culprit is indistinguishable
    from innocent co-flying jobs.  On breakage every in-flight job
    becomes a *suspect* and is re-run alone on a fresh single-worker
    pool: a solo job that breaks its pool is the culprit with certainty
    (and fails, honouring its retry budget), while innocents complete
    and rejoin normal batching.
    """
    pending = list(run.order)  # stable topological order
    attempts: dict[str, int] = {}
    suspects: list[str] = []
    while pending:
        if run.cancelled():
            for spec in pending:
                if spec.job_id not in run.results:
                    run.skip_cancelled(spec)
            return
        solo = next(
            (spec for spec in pending if spec.job_id in suspects), None
        )
        if solo is not None:
            _solo_round(run, executor, solo, attempts)
            suspects.remove(solo.job_id)
            pending = [
                spec for spec in pending
                if spec.job_id not in run.results
            ]
            continue
        newly_suspect, pending = _batch_round(
            run, jobs, executor, pending, attempts
        )
        suspects.extend(newly_suspect)


def _solo_round(
    run: _Run, executor: Executor, spec: JobSpec, attempts: dict[str, int]
) -> None:
    """Re-run one pool-break suspect in isolation until it resolves.

    With the job alone on a one-worker pool, a broken pool can only
    mean this job killed its worker.
    """
    if run.from_cache(spec):  # a same-key twin may have finished since
        return
    error_text = ""
    deadline = run.deadline_for(spec)
    while True:
        attempts[spec.job_id] = attempts.get(spec.job_id, 0) + 1
        attempt = attempts[spec.job_id]
        run._event(EVENT_STARTED, spec.job_id, attempt=attempt)
        try:
            with _make_pool(1) as pool:
                if executor is execute:
                    future = pool.submit(_pool_attempt, spec, attempt)
                else:
                    future = pool.submit(
                        _pool_custom_attempt, spec, executor, attempt
                    )
                try:
                    value, duration, pid, telemetry = future.result(
                        timeout=deadline
                    )
                except FutureTimeout:
                    if future.done():
                        # The *job* raised TimeoutError; let it take the
                        # ordinary job-failure path below.
                        raise
                    _abandon_pool(pool)
                    raise _DeadlineExceeded(deadline or 0.0) from None
        except _DeadlineExceeded:
            error_text = run.timed_out(spec, attempt)
        except BrokenProcessPool:
            error_text = "worker process died (job killed its worker)"
        except Exception as error:  # noqa: BLE001 - jobs may raise anything
            error_text = f"{type(error).__name__}: {error}"
        else:
            run.resolve(
                JobResult(
                    job_id=spec.job_id,
                    key=spec.key,
                    status=STATUS_OK,
                    value=value,
                    attempts=attempt,
                    duration_s=duration,
                    worker_pid=pid,
                    telemetry=telemetry,
                )
            )
            return
        if attempt <= spec.retries:
            run._event(
                EVENT_RETRY, spec.job_id, attempt=attempt, error=error_text
            )
            delay = run.backoff_delay(spec, attempt)
            if delay > 0:
                time.sleep(delay)
            continue
        run.resolve(
            JobResult(
                job_id=spec.job_id,
                key=spec.key,
                status=STATUS_FAILED,
                error=error_text,
                attempts=attempt,
            )
        )
        return


def _expired_futures(
    in_flight: dict[Future, JobSpec], deadlines: dict[Future, float]
) -> list[Future]:
    """In-flight futures whose deadline has passed and are not done."""
    now = time.monotonic()
    return [
        future
        for future, cutoff in deadlines.items()
        if future in in_flight and now >= cutoff and not future.done()
    ]


def _evict_overdue(
    run: _Run,
    pool: ProcessPoolExecutor,
    in_flight: dict[Future, JobSpec],
    deadlines: dict[Future, float],
    attempts: dict[str, int],
    overdue: list[Future],
) -> list[JobSpec]:
    """Replace a pool holding expired attempts; return specs to requeue.

    Three populations, three treatments:

    * an overdue future the pool never *started* is cancelled and
      requeued with its attempt refunded (queue wait ate the window —
      an undersized pool, not a hung job),
    * an overdue *running* attempt is charged: ``timeout`` event, then
      retry (no backoff — a hung retry already pays the full deadline)
      or terminal failure by its budget,
    * innocent in-flight jobs lose their worker with the pool; they are
      requeued with the interrupted attempt refunded.

    The caller restores topological order over the returned specs.
    """
    requeue: list[JobSpec] = []
    for future in overdue:
        spec = in_flight.pop(future)
        deadlines.pop(future, None)
        if future.cancel():
            run._event(
                EVENT_RETRY, spec.job_id,
                attempt=attempts.get(spec.job_id, 0),
                error="pool replaced before the attempt started; requeued",
            )
            attempts[spec.job_id] -= 1
            requeue.append(spec)
            continue
        attempt = attempts[spec.job_id]
        error_text = run.timed_out(spec, attempt)
        if attempt <= spec.retries:
            run._event(
                EVENT_RETRY, spec.job_id, attempt=attempt,
                error=error_text,
            )
            requeue.append(spec)
        else:
            run.resolve(
                JobResult(
                    job_id=spec.job_id,
                    key=spec.key,
                    status=STATUS_FAILED,
                    error=error_text,
                    attempts=attempt,
                )
            )
    for spec in in_flight.values():
        run._event(
            EVENT_RETRY, spec.job_id,
            attempt=attempts.get(spec.job_id, 0),
            error="pool replaced (deadline eviction); requeued",
        )
        attempts[spec.job_id] -= 1
        requeue.append(spec)
    in_flight.clear()
    deadlines.clear()
    _abandon_pool(pool)
    return requeue


def _batch_round(
    run: _Run,
    jobs: int,
    executor: Executor,
    pending: list[JobSpec],
    attempts: dict[str, int],
) -> tuple[list[str], list[JobSpec]]:
    """Run one pool until the work drains, breaks, or misses a deadline.

    Returns ``(suspect_job_ids, remaining_pending)`` — suspects are the
    jobs that were in flight when the pool broke (empty normally).

    Deadlines: a future's clock starts at submission (the pool cannot
    report when a worker picks a task up), so in a saturated pool the
    budget covers queue wait plus execution.  A future the pool never
    started is cancelled and requeued *uncharged* when its window
    expires — only attempts that actually ran are charged.  Because
    workers cannot be interrupted individually, an expired running
    attempt evicts the whole pool (:func:`_abandon_pool`); innocent
    co-flying jobs are requeued with the interrupted attempt refunded.
    """
    in_flight: dict[Future, JobSpec] = {}
    #: Absolute monotonic cutoffs for in-flight futures with deadlines.
    deadlines: dict[Future, float] = {}
    #: job id -> monotonic instant its backoff window closes.  Local to
    #: the round: a pool replacement forgets open windows, which only
    #: makes those retries sooner, never lost.
    not_before: dict[str, float] = {}

    def submit_ready(pool: ProcessPoolExecutor) -> None:
        nonlocal pending
        if run.cancelled():
            # Stop scheduling: everything not yet started resolves as
            # skipped; in-flight futures finish and resolve normally.
            for spec in pending:
                if spec.job_id not in run.results:
                    run.skip_cancelled(spec)
            pending = []
            return
        inflight_keys = {spec.key for spec in in_flight.values()}
        while True:
            progress = True
            while progress:
                progress = False
                now = time.monotonic()
                still_pending: list[JobSpec] = []
                for spec in pending:
                    if spec.job_id in run.results:
                        # Already resolved in an earlier round (a pool break
                        # can leave stale entries in the pending list).
                        continue
                    if not run.deps_resolved(spec):
                        still_pending.append(spec)
                        continue
                    failed = run.failed_dep(spec)
                    if failed is not None:
                        run.skip(spec, failed)
                        progress = True  # may unblock dependents' skip cascade
                        continue
                    if run.from_cache(spec):
                        progress = True  # cached result may ready dependents
                        continue
                    if spec.key in inflight_keys:
                        # A same-key job is already executing; hold this one
                        # back so it resolves as "cached" like in serial mode.
                        still_pending.append(spec)
                        continue
                    if not_before.get(spec.job_id, 0.0) > now:
                        # Backoff window still open; retry later.
                        still_pending.append(spec)
                        continue
                    not_before.pop(spec.job_id, None)
                    attempts[spec.job_id] = attempts.get(spec.job_id, 0) + 1
                    run._event(
                        EVENT_STARTED, spec.job_id,
                        attempt=attempts[spec.job_id],
                    )
                    if executor is execute:
                        future = pool.submit(
                            _pool_attempt, spec, attempts[spec.job_id]
                        )
                    else:
                        future = pool.submit(
                            _pool_custom_attempt, spec, executor,
                            attempts[spec.job_id],
                        )
                    deadline = run.deadline_for(spec)
                    if deadline is not None:
                        deadlines[future] = now + deadline
                    in_flight[future] = spec
                    inflight_keys.add(spec.key)
                pending = still_pending
            if in_flight or not pending:
                break
            # Nothing executing, yet work remains: every runnable spec
            # is inside a backoff window (dep-blocked specs need
            # in-flight work to unblock, which there is none of).
            # Sleep the shortest window out so the round cannot spin.
            waits = [
                not_before[spec.job_id] - time.monotonic()
                for spec in pending
                if spec.job_id in not_before
            ]
            if not waits:
                break
            pause = max(0.0, min(waits))
            if pause > 0:
                time.sleep(pause)
        metrics().gauge("queue.depth", len(pending))
        metrics().gauge_max("queue.active", len(in_flight))

    try:
        with _make_pool(jobs) as pool:
            submit_ready(pool)
            while in_flight:
                timeout = None
                if deadlines:
                    timeout = max(
                        0.0, min(deadlines.values()) - time.monotonic()
                    )
                done, _ = wait(
                    list(in_flight), timeout=timeout,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    spec = in_flight.pop(future)
                    deadlines.pop(future, None)
                    attempt = attempts[spec.job_id]
                    try:
                        value, duration, pid, telemetry = future.result()
                    except BrokenProcessPool:
                        in_flight[future] = spec  # back among survivors
                        raise
                    except Exception as error:  # noqa: BLE001
                        error_text = f"{type(error).__name__}: {error}"
                        if attempt <= spec.retries:
                            run._event(
                                EVENT_RETRY, spec.job_id, attempt=attempt,
                                error=error_text,
                            )
                            delay = run.backoff_delay(spec, attempt)
                            if delay > 0:
                                not_before[spec.job_id] = (
                                    time.monotonic() + delay
                                )
                            pending.append(spec)  # resubmit below
                        else:
                            run.resolve(
                                JobResult(
                                    job_id=spec.job_id,
                                    key=spec.key,
                                    status=STATUS_FAILED,
                                    error=error_text,
                                    attempts=attempt,
                                )
                            )
                        continue
                    run.resolve(
                        JobResult(
                            job_id=spec.job_id,
                            key=spec.key,
                            status=STATUS_OK,
                            value=value,
                            attempts=attempt,
                            duration_s=duration,
                            worker_pid=pid,
                            telemetry=telemetry,
                        )
                    )
                overdue = _expired_futures(in_flight, deadlines)
                if overdue:
                    requeue = _evict_overdue(
                        run, pool, in_flight, deadlines, attempts, overdue
                    )
                    requeue.extend(pending)
                    order_index = {
                        spec.job_id: i for i, spec in enumerate(run.order)
                    }
                    requeue.sort(key=lambda spec: order_index[spec.job_id])
                    return [], requeue
                submit_ready(pool)
    except BrokenProcessPool:
        # Someone killed a worker; every in-flight job is a suspect and
        # will be re-run in isolation.  The poisoned attempt stays in
        # the tally, so a repeat offender fails fast in its solo round.
        survivors = list(in_flight.values())
        for spec in survivors:
            run._event(
                EVENT_RETRY, spec.job_id,
                attempt=attempts.get(spec.job_id, 0),
                error="worker process died (pool broken); isolating",
            )
        order_index = {spec.job_id: i for i, spec in enumerate(run.order)}
        survivors.sort(key=lambda spec: order_index[spec.job_id])
        return (
            [spec.job_id for spec in survivors],
            survivors + pending,
        )
    return [], pending


def parallel_map(
    func: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: int = 1,
) -> list[Any]:
    """Order-preserving map, optionally over a process pool.

    The light-weight sibling of :func:`run_jobs` for homogeneous grids
    (parameter sweeps, sensitivity cases) that need no dependencies,
    caching, or retries.  With ``jobs > 1`` both ``func`` and every item
    must be picklable; results come back in input order so parallel
    evaluation is indistinguishable from serial.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1 or len(items) <= 1:
        return [func(item) for item in items]
    with _make_pool(min(jobs, len(items))) as pool:
        return list(pool.map(func, items))
