"""Dependency-aware job scheduler over pluggable execution backends.

:func:`run_jobs` takes a batch of :class:`~repro.runner.jobs.JobSpec`
and executes them respecting ``after`` dependencies, retrying failures
up to each spec's budget, consulting an optional content-addressed
cache, and emitting :class:`JobEvent` notifications to observers.

The scheduler owns *policy* — topological order, retry budgets,
full-jitter backoff, deadlines, caching, cancellation, events — and
delegates *mechanism* to an
:class:`~repro.runner.executors.ExecutionBackend`
(``submit / poll / collect / cancel / shutdown``):

* ``serial`` — in this process, one attempt at a time (default for
  ``jobs=1``; no pickling, easiest to debug),
* ``pool`` — a local :class:`~concurrent.futures.ProcessPoolExecutor`
  with broken-pool isolation and deadline eviction (default for
  ``jobs > 1``),
* ``fleet`` — independent single-job worker subprocesses under lease
  records, with lost-worker requeue and speculative straggler
  re-dispatch (see :mod:`repro.runner.executors.fleet`).

All backends share the same bookkeeping, produce the same results, and
schedule ready jobs in the stable order the specs were given, so a
parallel campaign is a faithful — bit-identical — replay of the serial
one.  A backend reporting an attempt *lost* (worker crash, broken
pool, expired lease) emits ``lost``/``requeued`` events and the job
re-runs under its retry budget — worker death is a recoverable event,
not a run-fatal one.

Resilience: every attempt may carry a wall-clock **deadline**
(``JobSpec.deadline_s``, or the ``REPRO_JOB_DEADLINE_S`` environment
default) — an attempt that outlives it is abandoned, emits a
``timeout`` event, and is charged against the retry budget, so one
hung job can never wedge a campaign.  Retries wait an exponentially
growing, fully jittered **backoff** (``JobSpec.retry_backoff_s``),
seedable per run for deterministic tests.  The scheduler also hosts
the ``queue.attempt`` fault-injection site (:mod:`repro.faults`):
``run_jobs(..., faults=...)`` activates a plan for the run, exported
to worker processes through the environment.

Events travel over the :class:`~repro.runner.events.EventBus`: every
run publishes a stamped :class:`~repro.runner.events.Event` stream
(sequence numbers, timestamps, run id) and observers are just bus
subscribers.  Telemetry rides the same machinery in reverse — workers
record metrics/spans into their own process-global registries and ship
the delta back piggybacked on the attempt outcome, which
:meth:`_Run.resolve` merges into the parent's registries, so a
parallel campaign aggregates observability without extra IPC.
"""

from __future__ import annotations

import os
import random
import time
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..errors import ConfigurationError
from ..faults import (
    FaultPlan,
    active_faults,
    coerce_plan,
    faults_active,
)
from ..telemetry import metrics, recorder
from .cache import ResultCache
from .events import (
    EVENT_CACHED,
    EVENT_FAILED,
    EVENT_FINISHED,
    EVENT_LOST,
    EVENT_REQUEUED,
    EVENT_RETRY,
    EVENT_SCHEDULED,
    EVENT_SKIPPED,
    EVENT_STARTED,
    EVENT_TIMEOUT,
    Event,
    EventBus,
    JobEvent,
)
from .executors.base import (
    KIND_SERIAL,
    OUTCOME_LOST,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    AttemptOutcome,
    DeadlineExceeded,
    ExecutionBackend,
    make_executor,
    resolve_executor_kind,
    run_one_attempt,
)
from .executors.serial import SerialExecutor
from .jobs import (
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    JobResult,
    JobSpec,
    execute,
)

__all__ = [
    "EVENT_CACHED",
    "EVENT_FAILED",
    "EVENT_FINISHED",
    "EVENT_LOST",
    "EVENT_REQUEUED",
    "EVENT_RETRY",
    "EVENT_SCHEDULED",
    "EVENT_SKIPPED",
    "EVENT_STARTED",
    "EVENT_TIMEOUT",
    "Event",
    "EventBus",
    "Executor",
    "JobEvent",
    "Observer",
    "parallel_map",
    "run_jobs",
    "topological_order",
]

Observer = Callable[["JobEvent"], None]
Executor = Callable[[JobSpec], Any]
#: Cooperative cancellation probe: return True to stop scheduling.
#: A ``threading.Event``'s bound ``is_set`` method fits directly.
CancelCheck = Callable[[], bool]

#: Error text stamped on jobs skipped by a cancellation request.
CANCELLED_ERROR = "cancelled"

#: Environment variable supplying a default per-attempt deadline for
#: specs that set none (``JobSpec.deadline_s`` wins when present).
DEADLINE_ENV_VAR = "REPRO_JOB_DEADLINE_S"

#: Ceiling on any single jittered backoff delay, seconds.
BACKOFF_CAP_S = 30.0

#: How often the scheduler re-checks the cancellation probe while
#: attempts are in flight, seconds.
CANCEL_POLL_S = 0.25

#: Backward-compatible alias; the class now lives with the backends.
_DeadlineExceeded = DeadlineExceeded

#: Backward-compatible alias for the attempt primitive.
_attempt = run_one_attempt


def _env_deadline() -> float | None:
    """The :data:`DEADLINE_ENV_VAR` default deadline, validated."""
    raw = os.environ.get(DEADLINE_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{DEADLINE_ENV_VAR} must be a number of seconds, got {raw!r}"
        ) from None
    if not value > 0:
        raise ConfigurationError(
            f"{DEADLINE_ENV_VAR} must be positive, got {raw!r}"
        )
    return value


def _backoff_delay(
    spec: JobSpec, attempt: int, rng: random.Random
) -> float:
    """Full-jitter exponential backoff before retrying ``spec``.

    ``attempt`` is the 1-based attempt that just failed; the delay is
    uniform in ``[0, min(cap, base * 2**(attempt-1))]`` — the classic
    "full jitter" scheme, which decorrelates retry storms better than
    equal or decorrelated jitter at the same mean delay.
    """
    base = spec.retry_backoff_s
    if base <= 0:
        return 0.0
    ceiling = min(BACKOFF_CAP_S, base * (2.0 ** (attempt - 1)))
    return rng.uniform(0.0, ceiling)


def topological_order(specs: Sequence[JobSpec]) -> list[JobSpec]:
    """Stable topological order of ``specs`` by their ``after`` edges.

    Raises :class:`~repro.errors.ConfigurationError` on duplicate ids,
    unknown dependencies, or cycles.  Stability: among ready jobs, the
    original sequence order is preserved (Kahn's algorithm with a
    FIFO ready list).
    """
    by_id: dict[str, JobSpec] = {}
    for spec in specs:
        if spec.job_id in by_id:
            raise ConfigurationError(f"duplicate job id {spec.job_id!r}")
        by_id[spec.job_id] = spec
    dependents: dict[str, list[str]] = {spec.job_id: [] for spec in specs}
    missing: dict[str, int] = {}
    for spec in specs:
        for dep in spec.after:
            if dep not in by_id:
                raise ConfigurationError(
                    f"job {spec.job_id!r} depends on unknown job {dep!r}"
                )
            dependents[dep].append(spec.job_id)
        missing[spec.job_id] = len(spec.after)
    ready = [spec.job_id for spec in specs if missing[spec.job_id] == 0]
    order: list[JobSpec] = []
    cursor = 0
    while cursor < len(ready):
        job_id = ready[cursor]
        cursor += 1
        order.append(by_id[job_id])
        for dependent in dependents[job_id]:
            missing[dependent] -= 1
            if missing[dependent] == 0:
                ready.append(dependent)
    if len(order) != len(specs):
        cyclic = sorted(set(by_id) - {spec.job_id for spec in order})
        raise ConfigurationError(
            f"dependency cycle among jobs: {', '.join(cyclic)}"
        )
    return order


class _Run:
    """Shared bookkeeping for one :func:`run_jobs` invocation."""

    def __init__(
        self,
        specs: Sequence[JobSpec],
        cache: ResultCache | None,
        observers: Sequence[Observer],
        run_id: str = "",
        bus: EventBus | None = None,
        cancel: CancelCheck | None = None,
        backoff_seed: int | None = None,
    ):
        self.order = topological_order(specs)
        self.default_deadline = _env_deadline()
        #: One rng for every backoff draw in the run: seeded, the whole
        #: retry schedule is reproducible; unseeded, delays decorrelate
        #: across concurrent campaigns (what production wants).
        self.backoff_rng = random.Random(backoff_seed)
        self.by_id = {spec.job_id: spec for spec in self.order}
        self.dependents: dict[str, list[str]] = {
            spec.job_id: [] for spec in self.order
        }
        for spec in self.order:
            for dep in spec.after:
                self.dependents[dep].append(spec.job_id)
        self.cache = cache
        self.cancel = cancel
        self.bus = bus if bus is not None else EventBus(run_id=run_id)
        for observer in observers:
            self.bus.subscribe(observer)
        self.results: dict[str, JobResult] = {}
        #: Run-local successful result per content key, so duplicate
        #: specs resolve as "cached" deterministically (and with the
        #: live value) whether the run is serial or parallel.
        self.done_by_key: dict[str, JobResult] = {}
        self.total = len(self.order)
        for spec in self.order:
            self._event(EVENT_SCHEDULED, spec.job_id)

    def _event(self, kind: str, job_id: str, **kwargs: Any) -> None:
        if kind == EVENT_RETRY:
            metrics().count("queue.retries")
        elif kind == EVENT_LOST:
            metrics().count("queue.lost")
        elif kind == EVENT_REQUEUED:
            metrics().count("queue.requeues")
        self.bus.publish(
            kind,
            job_id,
            total=self.total,
            done=len(self.results),
            **kwargs,
        )

    def resolve(self, result: JobResult) -> None:
        """Record a terminal result and emit its event.

        A result carrying a worker telemetry delta (pool or fleet
        attempts) has it merged into the parent's registries here,
        exactly once.
        """
        if result.telemetry is not None:
            metrics().merge(
                result.telemetry.get("metrics", {}),
                worker_pid=result.worker_pid,
            )
            recorder().absorb(result.telemetry.get("spans", ()))
        self.results[result.job_id] = result
        kind = {
            STATUS_OK: EVENT_FINISHED,
            STATUS_FAILED: EVENT_FAILED,
            STATUS_SKIPPED: EVENT_SKIPPED,
        }.get(result.status, EVENT_CACHED)
        if result.status == STATUS_OK:
            metrics().observe("queue.job_s", result.duration_s)
        self._event(
            kind,
            result.job_id,
            attempt=result.attempts,
            duration_s=result.duration_s,
            error=result.error,
        )
        if result.succeeded and result.key not in self.done_by_key:
            self.done_by_key[result.key] = result
        if self.cache is not None and result.status == STATUS_OK:
            self.cache.put(self.by_id[result.job_id], result)

    def deadline_for(self, spec: JobSpec) -> float | None:
        """Effective per-attempt deadline: spec first, then env default."""
        if spec.deadline_s is not None:
            return spec.deadline_s
        return self.default_deadline

    def backoff_delay(self, spec: JobSpec, attempt: int) -> float:
        """Draw (and record) the jittered delay before the next retry."""
        delay = _backoff_delay(spec, attempt, self.backoff_rng)
        if delay > 0:
            metrics().observe("queue.backoff_s", delay)
        return delay

    def timed_out(self, spec: JobSpec, attempt: int) -> str:
        """Account one expired attempt; returns its error text."""
        deadline = self.deadline_for(spec)
        error_text = f"deadline exceeded ({deadline:g}s)"
        metrics().count("queue.timeouts")
        self._event(
            EVENT_TIMEOUT,
            spec.job_id,
            attempt=attempt,
            duration_s=float(deadline or 0.0),
            error=error_text,
        )
        return error_text

    def cancelled(self) -> bool:
        """Whether the cancellation probe (if any) has fired."""
        return self.cancel is not None and bool(self.cancel())

    def skip_cancelled(self, spec: JobSpec) -> None:
        """Resolve one not-yet-started spec as skipped by cancellation."""
        self.resolve(
            JobResult(
                job_id=spec.job_id,
                key=spec.key,
                status=STATUS_SKIPPED,
                error=CANCELLED_ERROR,
            )
        )

    def deps_resolved(self, spec: JobSpec) -> bool:
        return all(dep in self.results for dep in spec.after)

    def failed_dep(self, spec: JobSpec) -> str | None:
        for dep in spec.after:
            result = self.results.get(dep)
            if result is not None and not result.succeeded:
                return dep
        return None

    def skip(self, spec: JobSpec, dep: str) -> None:
        self.resolve(
            JobResult(
                job_id=spec.job_id,
                key=spec.key,
                status=STATUS_SKIPPED,
                error=f"dependency {dep!r} did not succeed",
            )
        )

    def from_cache(self, spec: JobSpec) -> bool:
        """Try to resolve ``spec`` from memo state; True on a hit.

        Run-local results win over the external cache so a duplicate
        spec in the same run reuses the live value just produced.
        """
        prior = self.done_by_key.get(spec.key)
        if prior is not None:
            self.resolve(
                JobResult(
                    job_id=spec.job_id,
                    key=spec.key,
                    status=STATUS_CACHED,
                    value=prior.value,
                )
            )
            return True
        if self.cache is None:
            return False
        hit = self.cache.lookup(spec)
        if hit is None:
            return False
        self.resolve(hit)
        return True


def run_jobs(
    specs: Iterable[JobSpec],
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    observers: Sequence[Observer] = (),
    executor: Executor | str | ExecutionBackend | None = execute,
    run_id: str = "",
    bus: EventBus | None = None,
    cancel: CancelCheck | None = None,
    backoff_seed: int | None = None,
    faults: FaultPlan | str | Mapping[str, Any] | None = None,
) -> dict[str, JobResult]:
    """Execute a batch of job specs; return results keyed by job id.

    Parameters
    ----------
    jobs:
        Worker parallelism.  ``1`` executes serially in this process;
        ``N > 1`` fans out over a process pool (specs and values must
        pickle) — unless ``executor`` overrides the backend.
    cache:
        Optional content-addressed cache consulted before execution and
        updated after success.
    observers:
        Callables receiving every :class:`JobEvent` (subscribed to the
        run's event bus).
    executor:
        One of three things:

        * a **callable** — the per-spec execution function (injectable
          for tests; with a process-backed backend it must pickle).
          The backend is then resolved from ``REPRO_EXECUTOR`` and the
          ``jobs`` count, exactly as before this parameter grew.
        * a **backend kind name** — ``"serial"``, ``"pool"``, or
          ``"fleet"`` — selecting the execution backend with the
          default :func:`~repro.runner.jobs.execute` function.
        * an :class:`~repro.runner.executors.ExecutionBackend`
          **instance** — full control (custom function *and* backend,
          or a pre-configured :class:`FleetExecutor`).  The run owns
          the instance and shuts it down on exit.
    run_id:
        Identifier stamped into every published event (ignored when an
        explicit ``bus`` is given).
    bus:
        An existing :class:`~repro.runner.events.EventBus` to publish
        on — lets a caller share one stamped stream (and its sequence
        numbers) across several ``run_jobs`` invocations.
    cancel:
        Cooperative cancellation probe, polled between scheduling
        decisions (pass a ``threading.Event``'s ``is_set``).  Once it
        returns True no further job starts: every not-yet-started spec
        resolves as skipped with error ``"cancelled"`` (emitting its
        terminal event).  In-flight attempts are asked to abort; a
        backend that can kill its workers (fleet) does so and the job
        resolves as skipped, one that cannot (pool) lets the attempt
        finish and keep its result.
    backoff_seed:
        Seed for the run's retry-backoff jitter.  ``None`` (default)
        draws from entropy; a fixed seed makes the whole retry
        schedule reproducible for tests.
    faults:
        Optional fault-injection plan for this run — a
        :class:`~repro.faults.FaultPlan`, a plan mapping, inline JSON,
        or a plan-file path (see :func:`~repro.faults.coerce_plan`).
        Activated for the duration of the call and exported through
        ``REPRO_FAULTS`` so worker processes inherit it.  Jobs already
        honouring ``REPRO_FAULTS`` from the environment need nothing
        here.
    """
    spec_list = list(specs)
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    backend: ExecutionBackend | None = None
    executor_fn: Executor = execute
    choice: str | None = None
    if isinstance(executor, ExecutionBackend):
        backend = executor
    elif isinstance(executor, str):
        choice = executor
    elif executor is not None:
        executor_fn = executor
    # Resolve (and validate) the backend kind before any event fires.
    kind = (
        backend.name
        if backend is not None
        else resolve_executor_kind(choice, jobs)
    )
    if faults is None:
        # A malformed REPRO_FAULTS plan must fail the run up front,
        # not surface as a per-job failure at the first probe.
        faults_active()
    with active_faults(coerce_plan(faults)):
        run = _Run(
            spec_list, cache, observers, run_id=run_id, bus=bus,
            cancel=cancel, backoff_seed=backoff_seed,
        )
        if not run.order:
            return {}
        if backend is None and kind == KIND_SERIAL:
            _run_serial(run, SerialExecutor(executor_fn=executor_fn))
        elif isinstance(backend, SerialExecutor):
            _run_serial(run, backend)
        else:
            if backend is None:
                backend = make_executor(
                    kind, jobs=jobs, executor_fn=executor_fn
                )
            _run_dispatch(run, backend)
        return run.results


def _execute_with_retries(
    run: _Run, spec: JobSpec, backend: SerialExecutor
) -> None:
    """Serial path: attempt (with retries) and resolve one spec.

    One counter (``attempt``) drives the loop, the events, and the
    final result's ``attempts`` field — it can never disagree with
    itself the way a loop index plus a recomputed ``retries + 1``
    could.
    """
    error_text = ""
    duration = 0.0
    deadline = run.deadline_for(spec)
    attempt = 0
    while attempt <= spec.retries:
        attempt += 1
        run._event(EVENT_STARTED, spec.job_id, attempt=attempt)
        try:
            value, duration, pid = backend.run_attempt(
                spec, attempt, deadline
            )
        except DeadlineExceeded:
            error_text = run.timed_out(spec, attempt)
        except Exception as error:  # noqa: BLE001 - jobs may raise anything
            error_text = f"{type(error).__name__}: {error}"
        else:
            run.resolve(
                JobResult(
                    job_id=spec.job_id,
                    key=spec.key,
                    status=STATUS_OK,
                    value=value,
                    attempts=attempt,
                    duration_s=duration,
                    worker_pid=pid,
                )
            )
            return
        if attempt <= spec.retries:
            run._event(
                EVENT_RETRY, spec.job_id, attempt=attempt,
                error=error_text,
            )
            delay = run.backoff_delay(spec, attempt)
            if delay > 0:
                time.sleep(delay)
    run.resolve(
        JobResult(
            job_id=spec.job_id,
            key=spec.key,
            status=STATUS_FAILED,
            error=error_text,
            attempts=attempt,
        )
    )


def _run_serial(run: _Run, backend: SerialExecutor) -> None:
    for spec in run.order:
        if run.cancelled():
            run.skip_cancelled(spec)
            continue
        failed = run.failed_dep(spec)
        if failed is not None:
            run.skip(spec, failed)
            continue
        if run.from_cache(spec):
            continue
        _execute_with_retries(run, spec, backend)


def _submit_ready(
    run: _Run,
    backend: ExecutionBackend,
    pending: list[JobSpec],
    tickets: dict[str, JobSpec],
    attempts: dict[str, int],
    not_before: dict[str, float],
) -> None:
    """Dispatch every runnable pending spec, capacity permitting.

    Mutates ``pending`` in place.  Capacity capping is what fixes the
    historical ``_abandon_pool`` unfairness: a job is only ever handed
    to the backend when a worker slot exists for it, so a broken pool
    can never take down jobs that were merely queued behind the
    casualties.  The skip/cache cascade keeps running at capacity —
    only actual dispatch is gated.
    """
    capacity = backend.capacity()
    inflight_keys = {spec.key for spec in tickets.values()}
    progress = True
    while progress:
        progress = False
        now = time.monotonic()
        still_pending: list[JobSpec] = []
        for spec in pending:
            if spec.job_id in run.results:
                # Already resolved (e.g. skipped by an earlier cascade
                # pass that left a stale entry in the pending list).
                continue
            if not run.deps_resolved(spec):
                still_pending.append(spec)
                continue
            failed = run.failed_dep(spec)
            if failed is not None:
                run.skip(spec, failed)
                progress = True  # may unblock dependents' skip cascade
                continue
            if run.from_cache(spec):
                progress = True  # cached result may ready dependents
                continue
            if spec.key in inflight_keys:
                # A same-key job is already executing; hold this one
                # back so it resolves as "cached" like in serial mode.
                still_pending.append(spec)
                continue
            if not_before.get(spec.job_id, 0.0) > now:
                # Backoff window still open; retry later.
                still_pending.append(spec)
                continue
            if len(tickets) >= capacity:
                still_pending.append(spec)
                continue
            not_before.pop(spec.job_id, None)
            attempts[spec.job_id] = attempts.get(spec.job_id, 0) + 1
            run._event(
                EVENT_STARTED, spec.job_id, attempt=attempts[spec.job_id]
            )
            ticket = backend.submit(
                spec, attempts[spec.job_id], run.deadline_for(spec)
            )
            tickets[ticket] = spec
            inflight_keys.add(spec.key)
        pending[:] = still_pending
    metrics().gauge("queue.depth", len(pending))
    metrics().gauge_max("queue.active", len(tickets))


def _dispatch_outcome(
    run: _Run,
    spec: JobSpec,
    outcome: AttemptOutcome,
    attempts: dict[str, int],
    pending: list[JobSpec],
    not_before: dict[str, float],
) -> None:
    """Apply retry/requeue policy to one collected attempt outcome."""
    attempt = outcome.attempt
    if outcome.status == OUTCOME_OK:
        run.resolve(
            JobResult(
                job_id=spec.job_id,
                key=spec.key,
                status=STATUS_OK,
                value=outcome.value,
                attempts=attempt,
                duration_s=outcome.duration_s,
                worker_pid=outcome.worker_pid,
                telemetry=outcome.telemetry,
            )
        )
        return
    if outcome.status == OUTCOME_TIMEOUT:
        error_text = run.timed_out(spec, attempt)
        if attempt <= spec.retries:
            # No backoff: a hung retry already pays the full deadline.
            run._event(
                EVENT_RETRY, spec.job_id, attempt=attempt, error=error_text
            )
            pending.append(spec)
        else:
            run.resolve(
                JobResult(
                    job_id=spec.job_id,
                    key=spec.key,
                    status=STATUS_FAILED,
                    error=error_text,
                    attempts=attempt,
                )
            )
        return
    if outcome.status == OUTCOME_LOST:
        run._event(
            EVENT_LOST, spec.job_id, attempt=attempt, error=outcome.error
        )
        if not outcome.charge:
            attempts[spec.job_id] -= 1
        if outcome.requeue or attempt <= spec.retries:
            run._event(
                EVENT_REQUEUED, spec.job_id,
                attempt=attempts[spec.job_id], error=outcome.error,
            )
            if outcome.charge and not outcome.requeue:
                # A budget-driven requeue (fleet worker loss) honours
                # the existing backoff machinery; forced requeues
                # (pool-break isolation, eviction refunds) re-dispatch
                # immediately, as the pool path always has.
                delay = run.backoff_delay(spec, attempt)
                if delay > 0:
                    not_before[spec.job_id] = time.monotonic() + delay
            pending.append(spec)
        else:
            run.resolve(
                JobResult(
                    job_id=spec.job_id,
                    key=spec.key,
                    status=STATUS_FAILED,
                    error=outcome.error,
                    attempts=attempt,
                )
            )
        return
    # OUTCOME_ERROR: an ordinary job failure, retried under budget.
    if attempt <= spec.retries:
        run._event(
            EVENT_RETRY, spec.job_id, attempt=attempt, error=outcome.error
        )
        delay = run.backoff_delay(spec, attempt)
        if delay > 0:
            not_before[spec.job_id] = time.monotonic() + delay
        pending.append(spec)
    else:
        run.resolve(
            JobResult(
                job_id=spec.job_id,
                key=spec.key,
                status=STATUS_FAILED,
                error=outcome.error,
                attempts=attempt,
            )
        )


def _run_dispatch(run: _Run, backend: ExecutionBackend) -> None:
    """Drive one run over an asynchronous execution backend.

    The loop: dispatch every runnable spec (capacity-capped), poll the
    backend for finished attempts, apply retry/requeue policy, repeat.
    The backend owns worker processes and loss detection; this loop
    owns everything observable (events, budgets, results).
    """
    pending = list(run.order)
    attempts: dict[str, int] = {}
    tickets: dict[str, JobSpec] = {}
    not_before: dict[str, float] = {}
    order_index = {spec.job_id: i for i, spec in enumerate(run.order)}
    try:
        while pending or tickets:
            if run.cancelled():
                for spec in pending:
                    if spec.job_id not in run.results:
                        run.skip_cancelled(spec)
                pending = []
                for tid in list(tickets):
                    if backend.cancel(tid):
                        spec = tickets.pop(tid)
                        if spec.job_id not in run.results:
                            run.skip_cancelled(spec)
                if not tickets:
                    return
            else:
                _submit_ready(
                    run, backend, pending, tickets, attempts, not_before
                )
            if not tickets:
                if not pending:
                    return
                # Nothing executing, yet work remains: every runnable
                # spec is inside a backoff window (dep-blocked specs
                # need in-flight work to unblock, which there is none
                # of).  Sleep the shortest window out.
                waits = [
                    not_before[spec.job_id] - time.monotonic()
                    for spec in pending
                    if spec.job_id in not_before
                ]
                if not waits:
                    return
                pause = max(0.0, min(waits))
                if pause > 0:
                    time.sleep(pause)
                continue
            timeout: float | None = None
            if run.cancel is not None:
                timeout = CANCEL_POLL_S
            waits = [
                not_before[spec.job_id] - time.monotonic()
                for spec in pending
                if spec.job_id in not_before
            ]
            if waits:
                window = max(0.0, min(waits))
                timeout = window if timeout is None else min(
                    timeout, window
                )
            for tid in backend.poll(timeout):
                spec = tickets.pop(tid)
                _dispatch_outcome(
                    run, spec, backend.collect(tid), attempts, pending,
                    not_before,
                )
            # Requeues append out of order; restore the stable
            # topological order the whole scheduler guarantees.
            pending.sort(key=lambda spec: order_index[spec.job_id])
    finally:
        backend.shutdown()


def parallel_map(
    func: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: int = 1,
) -> list[Any]:
    """Order-preserving map, optionally over a process pool.

    The light-weight sibling of :func:`run_jobs` for homogeneous grids
    (parameter sweeps, sensitivity cases) that need no dependencies,
    caching, or retries.  With ``jobs > 1`` both ``func`` and every item
    must be picklable; results come back in input order so parallel
    evaluation is indistinguishable from serial.
    """
    from .executors.pool import make_pool

    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1 or len(items) <= 1:
        return [func(item) for item in items]
    with make_pool(min(jobs, len(items))) as pool:
        return list(pool.map(func, items))
