"""Declarative campaigns: batches of experiments and sweeps as one run.

A :class:`Campaign` collects job specs through a small builder API —
registry experiments, importable callables, and one-parameter grids —
and :func:`run_campaign` executes the whole batch through the scheduler
with an optional persistent store, returning a
:class:`CampaignResult` that renders a summary table and exposes every
job's headline scalars.

The acceptance contract of the engine: a campaign run with ``jobs=N``
produces headline scalars identical to serial execution, and an
immediate re-run against the same store resolves entirely from cache.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..analysis.tables import Table
from ..errors import CampaignError, ConfigurationError
from .cache import ResultCache
from .jobs import (
    KIND_CALLABLE,
    KIND_EXPERIMENT,
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    JobResult,
    JobSpec,
)
from .events import EventBus
from .monitor import ProgressMonitor
from .queue import Observer, run_jobs
from .store import ResultStore


@dataclass
class Campaign:
    """A named, ordered batch of jobs built declaratively.

    Builder methods return ``self`` so campaigns chain::

        campaign = (
            Campaign("nightly")
            .experiment("table1")
            .experiment("fig2a")
            .sweep("be", "repro.core.energy:break_even_kb", "rate_bps",
                   [32_000.0, 1_024_000.0])
        )
    """

    name: str = "campaign"
    specs: list[JobSpec] = field(default_factory=list)
    _ids: set[str] = field(
        init=False, repr=False, compare=False, default_factory=set
    )

    def __post_init__(self) -> None:
        self._ids = {spec.job_id for spec in self.specs}

    def _add(self, spec: JobSpec) -> "Campaign":
        if spec.job_id in self._ids:
            raise ConfigurationError(
                f"campaign {self.name!r} already has job {spec.job_id!r}"
            )
        self.specs.append(spec)
        self._ids.add(spec.job_id)
        return self

    def experiment(
        self,
        experiment_id: str,
        job_id: str | None = None,
        after: Sequence[str] = (),
        retries: int = 0,
        **overrides: Any,
    ) -> "Campaign":
        """Add one registry experiment (with optional kwarg overrides)."""
        return self._add(
            JobSpec(
                job_id=job_id or experiment_id,
                kind=KIND_EXPERIMENT,
                target=experiment_id,
                params=overrides,
                after=tuple(after),
                retries=retries,
            )
        )

    def call(
        self,
        job_id: str,
        target: str,
        after: Sequence[str] = (),
        retries: int = 0,
        **params: Any,
    ) -> "Campaign":
        """Add one importable ``"pkg.module:function"`` callable job."""
        return self._add(
            JobSpec(
                job_id=job_id,
                kind=KIND_CALLABLE,
                target=target,
                params=params,
                after=tuple(after),
                retries=retries,
            )
        )

    def sweep(
        self,
        prefix: str,
        target: str,
        parameter: str,
        values: Sequence[Any],
        after: Sequence[str] = (),
        retries: int = 0,
        **common: Any,
    ) -> "Campaign":
        """Add one job per grid value of ``parameter`` for ``target``.

        Job ids are ``"{prefix}[{value}]"``; each job calls the target
        with ``{parameter: value, **common}``.
        """
        if not values:
            raise ConfigurationError(f"sweep {prefix!r} needs values")
        for value in values:
            self.call(
                f"{prefix}[{value}]",
                target,
                after=after,
                retries=retries,
                **{parameter: value, **common},
            )
        return self

    def job_ids(self) -> list[str]:
        """Ids in declaration order."""
        return [spec.job_id for spec in self.specs]


def registry_campaign(
    experiment_ids: Sequence[str] | None = None,
    name: str = "registry",
    retries: int = 0,
) -> Campaign:
    """A campaign over registry experiments (all of them by default)."""
    from ..experiments import list_experiments, validate_experiment_ids

    if experiment_ids is None:
        experiment_ids = [eid for eid, _ in list_experiments()]
    else:
        validate_experiment_ids(experiment_ids)
    campaign = Campaign(name)
    for experiment_id in experiment_ids:
        campaign.experiment(experiment_id, retries=retries)
    return campaign


@dataclass(frozen=True)
class CampaignResult:
    """Everything one campaign run produced.

    Attributes
    ----------
    name:
        The campaign's name.
    results:
        Terminal :class:`~repro.runner.jobs.JobResult` per job id.
    order:
        Job ids in declaration order (summary rows keep this order).
    duration_s:
        Wall time of the whole run.
    cache_stats:
        Hit/miss/put counters of the cache used (empty without one).
    """

    name: str
    results: dict[str, JobResult]
    order: tuple[str, ...]
    duration_s: float
    cache_stats: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether every job succeeded (fresh or cached)."""
        return all(result.succeeded for result in self.results.values())

    @property
    def failures(self) -> tuple[str, ...]:
        """Ids of failed or skipped jobs, in declaration order."""
        return tuple(
            job_id
            for job_id in self.order
            if not self.results[job_id].succeeded
        )

    def status_counts(self) -> dict[str, int]:
        """How many jobs ended in each status."""
        counts: dict[str, int] = {}
        for result in self.results.values():
            counts[result.status] = counts.get(result.status, 0) + 1
        return counts

    def headlines(self) -> dict[str, dict[str, Any]]:
        """Headline scalars per succeeded job id, in declaration order.

        Identical whether a job ran serially, in parallel, or resolved
        from cache — this is the campaign's result of record.
        """
        return {
            job_id: self.results[job_id].headline()
            for job_id in self.order
            if self.results[job_id].succeeded
        }

    def raise_on_failure(self) -> None:
        """Raise :class:`~repro.errors.CampaignError` if any job failed."""
        failures = self.failures
        if failures:
            details = "; ".join(
                f"{job_id}: {self.results[job_id].error}"
                for job_id in failures[:3]
            )
            raise CampaignError(
                f"campaign {self.name!r}: {len(failures)} of "
                f"{len(self.order)} jobs did not succeed ({details})",
                job_ids=failures,
            )

    def summary(self) -> str:
        """Aligned per-job summary table plus a totals line."""
        rows = []
        for job_id in self.order:
            result = self.results[job_id]
            detail = (
                result.error
                if result.error
                else f"{len(result.headline())} headline scalars"
            )
            rows.append(
                (
                    job_id,
                    result.status,
                    result.attempts,
                    f"{result.duration_s:.2f}",
                    detail,
                )
            )
        table = Table(
            title=f"Campaign {self.name!r}",
            headers=("job", "status", "attempts", "seconds", "detail"),
            rows=tuple(rows),
        )
        counts = self.status_counts()
        totals = ", ".join(
            f"{counts[status]} {status}"
            for status in (STATUS_OK, STATUS_CACHED, STATUS_FAILED,
                           STATUS_SKIPPED)
            if counts.get(status)
        )
        footer = (
            f"{len(self.order)} jobs: {totals} in {self.duration_s:.2f}s"
        )
        if self.cache_stats:
            footer += (
                f" (cache: {self.cache_stats.get('hits', 0)} hits, "
                f"{self.cache_stats.get('misses', 0)} misses)"
            )
        return table.render() + "\n\n" + footer


def run_campaign(
    campaign: Campaign,
    *,
    jobs: int = 1,
    store_path: str | None = None,
    store_backend: str | None = None,
    store: ResultStore | None = None,
    cache: ResultCache | None = None,
    cache_preload: str | None = None,
    observers: Sequence[Observer] = (),
    monitor: ProgressMonitor | None = None,
    strict: bool = False,
    run_id: str = "",
    bus: EventBus | None = None,
    cancel: Callable[[], bool] | None = None,
    backoff_seed: int | None = None,
    faults: Any = None,
    executor: Any = None,
) -> CampaignResult:
    """Execute a campaign and return its :class:`CampaignResult`.

    Parameters
    ----------
    jobs:
        Worker processes (``1`` = serial in-process).
    store_path / store:
        Persist results to a result store at this path (or use the
        given store); previously stored results resolve as cache hits,
        which makes interrupted or repeated campaigns resumable.
    store_backend:
        Persistence backend for ``store_path`` (``"jsonl"`` or
        ``"sqlite"``); ``None`` resolves automatically (existing format
        > ``REPRO_STORE_BACKEND`` > extension > jsonl).
    cache:
        Explicit cache instance (overrides store-derived caching).
    cache_preload:
        How the store-derived cache warms up: ``"all"`` (default)
        preloads the store's whole latest-per-key view, ``"lazy"``
        resolves keys on first lookup, and ``"specs"`` preloads exactly
        this campaign's content keys — the memory-bounded choice when
        the store also holds millions of per-point sweep records.
    observers, monitor:
        Extra scheduler observers; ``monitor`` is appended last so its
        counters see every event.
    strict:
        Raise :class:`~repro.errors.CampaignError` on any failure
        instead of returning a result with ``ok == False``.
    run_id / bus:
        Event-stream identity, forwarded to
        :func:`~repro.runner.queue.run_jobs` — ``run_id`` stamps every
        published :class:`~repro.runner.events.Event`; an explicit
        ``bus`` shares one stamped stream across runs.
    cancel:
        Cooperative cancellation probe polled by the scheduler (pass a
        ``threading.Event``'s ``is_set``); once it fires, every job not
        yet started resolves as skipped with error ``"cancelled"``.
        This is the hook the campaign service's ``DELETE`` endpoint
        pulls.
    backoff_seed:
        Seed for retry-backoff jitter, forwarded to
        :func:`~repro.runner.queue.run_jobs` (``None`` = entropy).
    faults:
        Optional fault-injection plan for the run (a
        :class:`~repro.faults.FaultPlan`, plan mapping, inline JSON,
        or plan-file path), forwarded to
        :func:`~repro.runner.queue.run_jobs`.
    executor:
        Execution backend choice forwarded to
        :func:`~repro.runner.queue.run_jobs`: ``None`` (resolve from
        ``REPRO_EXECUTOR`` then the ``jobs`` count), a kind name
        (``"serial"``/``"pool"``/``"fleet"``), or an
        :class:`~repro.runner.executors.ExecutionBackend` instance.
        When the *fleet* kind is chosen by name and the campaign has a
        ``store_path``, the fleet's working directory (leases, task
        files, worker logs) is pinned next to the store at
        ``<store_path>.fleet`` — which is what makes an interrupted
        campaign resumable: a restarted supervisor fences orphaned
        workers from the lease transcript before re-running.
    """
    if store_path is not None and store is not None:
        raise ConfigurationError("pass either store_path or store, not both")
    if store_backend is not None and store_path is None:
        raise ConfigurationError(
            "store_backend needs store_path (a constructed store already "
            "carries its backend)"
        )
    if cache is not None and cache_preload is not None:
        raise ConfigurationError(
            "cache_preload configures the store-derived cache; an explicit "
            "cache already chose its preload"
        )
    if cache_preload not in (None, "all", "lazy", "specs"):
        raise ConfigurationError(
            f"unknown cache_preload {cache_preload!r} "
            "(expected 'all', 'lazy', or 'specs')"
        )
    owned_store: ResultStore | None = None
    if store_path is not None:
        store = owned_store = ResultStore(store_path, backend=store_backend)
    try:
        if cache is None and store is not None:
            if cache_preload == "specs":
                cache = ResultCache(
                    store, preload=[spec.key for spec in campaign.specs]
                )
            else:
                cache = ResultCache(store, preload=cache_preload or "all")
        all_observers = list(observers)
        if monitor is not None:
            all_observers.append(monitor)
        run_executor = executor
        if run_executor is None or isinstance(run_executor, str):
            from .executors.base import KIND_FLEET, resolve_executor_kind

            kind = resolve_executor_kind(run_executor, jobs)
            if kind == KIND_FLEET and store_path is not None:
                # Pin the fleet working directory next to the store so
                # a restarted supervisor finds the lease transcript of
                # an interrupted campaign and fences its orphans.
                from .executors.fleet import FleetExecutor

                run_executor = FleetExecutor(
                    jobs, fleet_dir=store_path + ".fleet"
                )
            else:
                run_executor = kind
        start = time.perf_counter()
        results = run_jobs(
            campaign.specs,
            jobs=jobs,
            cache=cache,
            observers=all_observers,
            executor=run_executor,
            run_id=run_id,
            bus=bus,
            cancel=cancel,
            backoff_seed=backoff_seed,
            faults=faults,
        )
        outcome = CampaignResult(
            name=campaign.name,
            results=results,
            order=tuple(campaign.job_ids()),
            duration_s=time.perf_counter() - start,
            cache_stats=cache.stats() if cache is not None else {},
        )
    finally:
        # Close only the store this call opened; a caller-provided
        # store (or cache backing) stays the caller's to manage.
        if owned_store is not None:
            owned_store.close()
    if strict:
        outcome.raise_on_failure()
    return outcome


def headline_of(result: JobResult | Mapping[str, Any]) -> dict[str, Any]:
    """Headline scalars from a live result or a stored record."""
    if isinstance(result, JobResult):
        return result.headline()
    return JobResult.from_record(result).headline()
