"""Persistent JSONL result store.

One append-only JSON-Lines file holds every job record a campaign ever
produced.  Appends are atomic at line granularity (single ``write`` of a
line ending in ``\\n``), so a campaign killed mid-run leaves at most one
truncated trailing line — :meth:`ResultStore.load` tolerates and skips
it, which is what makes interrupted campaigns resumable.

The store is deliberately dumb: records in, records out, plus small
query helpers.  Content-addressed lookup semantics (latest ``ok`` record
per key) live in :mod:`repro.runner.cache`.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterator, Mapping

from ..errors import ConfigurationError


class ResultStore:
    """Append-only JSONL store of job-result records.

    Parameters
    ----------
    path:
        File to append records to; parent directories are created.  The
        conventional extension is ``.jsonl``.
    """

    def __init__(self, path: str | os.PathLike[str]):
        self.path = os.fspath(path)
        if os.path.isdir(self.path):
            raise ConfigurationError(
                f"store path {self.path!r} is a directory, need a file"
            )
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)

    def append(self, record: Mapping[str, Any]) -> None:
        """Durably append one record."""
        if "key" not in record or "status" not in record:
            raise ConfigurationError(
                "store records need at least 'key' and 'status' fields"
            )
        line = json.dumps(dict(record), sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            if handle.tell() > 0 and not self._ends_with_newline():
                # A previous writer was killed mid-line; start fresh so
                # the torn fragment doesn't swallow this record too.
                handle.write("\n")
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _ends_with_newline(self) -> bool:
        with open(self.path, "rb") as handle:
            handle.seek(-1, os.SEEK_END)
            return handle.read(1) == b"\n"

    def load(self) -> list[dict[str, Any]]:
        """All readable records, in append order.

        A truncated or corrupt trailing line (interrupted writer) is
        skipped rather than raised, so a resumed campaign can keep the
        successful prefix.
        """
        if not os.path.exists(self.path):
            return []
        records = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # interrupted append; drop the partial line
                if isinstance(record, dict):
                    records.append(record)
        return records

    def __len__(self) -> int:
        return len(self.load())

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.load())

    # -- query helpers -----------------------------------------------------

    def latest_by_key(
        self, status: str | None = "ok"
    ) -> dict[str, dict[str, Any]]:
        """Latest record per content key, optionally filtered by status.

        Later appends win, so a job re-run after a failure supersedes
        the failed record.
        """
        latest: dict[str, dict[str, Any]] = {}
        for record in self.load():
            if status is not None and record.get("status") != status:
                continue
            latest[record["key"]] = record
        return latest

    def get(self, key: str) -> dict[str, Any] | None:
        """Latest ``ok`` record for one content key (``None`` if absent)."""
        return self.latest_by_key().get(key)

    def for_job(self, job_id: str) -> list[dict[str, Any]]:
        """All records for one display id, in append order."""
        return [r for r in self.load() if r.get("job_id") == job_id]

    def keys(self) -> set[str]:
        """Content keys with at least one ``ok`` record."""
        return set(self.latest_by_key())
