"""Persistent result store: a facade over pluggable backends.

:class:`ResultStore` keeps the dumb records-in/records-out contract the
campaign engine was built on, but delegates persistence to a
:class:`~repro.runner.backends.base.StoreBackend`:

* ``backend="jsonl"`` — one append-only JSON-Lines file; appends are
  flush+fsync durable and atomic at line granularity, so a killed
  campaign leaves at most one torn trailing line (skipped on load),
* ``backend="sqlite"`` — a WAL-mode SQLite database with key/job/time
  indexes, so ``get``/``latest_by_key`` stay O(log n) at
  million-record campaign-history scale.

With no explicit ``backend`` the store recognises the on-disk format
of an existing file, then honours the ``REPRO_STORE_BACKEND``
environment variable, then the path extension (``.sqlite``/``.db`` →
SQLite), defaulting to JSONL.

Every appended record is stamped with the package version and the
reference-config content hash (:mod:`repro.runner.provenance`) so the
cache can detect and invalidate results produced by older model code.
Content-addressed lookup semantics (latest ``ok`` record per key) live
in :mod:`repro.runner.cache`.
"""

from __future__ import annotations

import os
import time
from typing import Any, Iterable, Iterator, Mapping

from ..errors import ConfigurationError
from ..telemetry import metrics, span
from .backends import StoreBackend, make_backend
from .provenance import stamp_record


class ResultStore:
    """Append-only store of job-result records behind a backend.

    Parameters
    ----------
    path:
        File the backend persists to; parent directories are created.
        Conventional extensions are ``.jsonl`` and ``.sqlite``.
    backend:
        ``"jsonl"``, ``"sqlite"``, or ``None`` to resolve automatically
        (existing format > ``REPRO_STORE_BACKEND`` > extension > jsonl).
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        backend: str | None = None,
    ):
        self.path = os.fspath(path)
        if os.path.isdir(self.path):
            raise ConfigurationError(
                f"store path {self.path!r} is a directory, need a file"
            )
        self._backend = make_backend(self.path, backend)

    @property
    def backend(self) -> StoreBackend:
        """The persistence backend instance."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Registry name of the active backend."""
        return self._backend.name

    def close(self) -> None:
        """Release backend resources (idempotent)."""
        self._backend.close()

    # -- telemetry ---------------------------------------------------------

    def _metric(self, op: str) -> str:
        """Backend-qualified metric name, e.g. ``store.sqlite.append``."""
        return f"store.{self.backend_name}.{op}"

    def _instrumented_iter(
        self, source: Iterable[Any], op: str, sized: bool = False
    ) -> Iterator[Any]:
        """Wrap a backend iterator with call/record/duration metrics.

        Per-item cost is two local increments; the metric writes happen
        once, in a ``finally``, so million-record streams pay one
        counter add, not a million.  The observed duration is the wall
        time the iterator was open — it includes consumer time between
        pulls, which is the number that matters for pipeline rollups.
        """
        name = self._metric(op)
        metrics().count(name)
        records = 0
        byte_count = 0
        start = time.perf_counter()
        try:
            for item in source:
                records += 1
                if sized:
                    byte_count += item[1]
                yield item
        finally:
            metrics().count(f"{name}.records", records)
            if sized:
                metrics().count(f"{name}.bytes", byte_count)
            metrics().observe(f"{name}_s", time.perf_counter() - start)

    # -- writes ------------------------------------------------------------

    def append(self, record: Mapping[str, Any]) -> None:
        """Durably append one record, stamped with current provenance."""
        self.append_many([dict(record)])

    def append_many(self, records: list[dict[str, Any]]) -> None:
        """Append a stamped batch (one durability barrier per batch)."""
        if not records:
            return
        stamped = [stamp_record(record) for record in records]
        name = self._metric("append")
        metrics().count(name)
        metrics().count(f"{name}.records", len(stamped))
        with span(
            "store.flush",
            cat="store",
            backend=self.backend_name,
            records=len(stamped),
        ):
            with metrics().timer(f"{name}_s"):
                self._backend.append_many(stamped)

    # -- reads -------------------------------------------------------------

    def load(self) -> list[dict[str, Any]]:
        """All readable records, in append order."""
        return self._backend.load()

    def iter_records(self) -> Iterator[dict[str, Any]]:
        """Stream records in append order without materialising them."""
        return self._instrumented_iter(
            self._backend.iter_records(), "iter"
        )

    def iter_records_with_size(
        self,
    ) -> Iterator[tuple[dict[str, Any], int]]:
        """Stream ``(record, stored_bytes)`` pairs in append order."""
        return self._instrumented_iter(
            self._backend.iter_records_with_size(), "iter", sized=True
        )

    def __len__(self) -> int:
        return len(self._backend)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self._backend)

    def latest_by_key(
        self, status: str | None = "ok"
    ) -> dict[str, dict[str, Any]]:
        """Latest record per content key, optionally filtered by status.

        Later appends win, so a job re-run after a failure supersedes
        the failed record.
        """
        return self._backend.latest_by_key(status)

    def iter_latest_by_key(
        self, status: str | None = "ok"
    ) -> Iterator[dict[str, Any]]:
        """Stream the latest record per key without materialising them.

        Same winners as :meth:`latest_by_key`, in the winning records'
        append order; peak memory is bounded by per-key bookkeeping
        (JSONL byte offsets / a SQLite index walk), not by history size.
        """
        return self._instrumented_iter(
            self._backend.iter_latest_by_key(status), "iter_latest"
        )

    def get(self, key: str) -> dict[str, Any] | None:
        """Latest ``ok`` record for one content key (``None`` if absent)."""
        metrics().count(self._metric("get"))
        with metrics().timer(self._metric("get_s")):
            return self._backend.get(key)

    def for_job(self, job_id: str) -> list[dict[str, Any]]:
        """All records for one display id, in append order."""
        return self._backend.for_job(job_id)

    def keys(self) -> set[str]:
        """Content keys with at least one ``ok`` record."""
        return self._backend.keys()

    # -- maintenance -------------------------------------------------------

    def verify(self) -> dict[str, Any]:
        """Integrity-scan the whole history (see backend ``verify``).

        Read-only: damaged records are reported, not rewritten — they
        stay quarantined on every read path, and recomputing their
        jobs (the content key now reads as missing) restores the data.
        """
        name = self._metric("verify")
        metrics().count(name)
        with metrics().timer(f"{name}_s"):
            stats = self._backend.verify()
        return stats

    def compact(self) -> int:
        """Drop superseded history (keep latest + latest-``ok`` per key).

        Returns how many records were removed.  ``get``, ``keys``, and
        ``latest_by_key`` answer identically before and after, so a
        campaign re-run against a compacted store still resolves
        entirely from cache.
        """
        name = self._metric("compact")
        metrics().count(name)
        with metrics().timer(f"{name}_s"):
            dropped = self._backend.compact()
        metrics().count(f"{name}.dropped", dropped)
        return dropped


def _migration_target_backend(dst: str, src_name: str) -> str:
    """Destination backend when none was given, ignoring the env var.

    An existing destination keeps its on-disk format, a recognised
    extension wins for fresh files, and otherwise the migration
    converts to the *other* backend — the whole point of migrating.
    """
    from .backends import SQLITE_EXTENSIONS, detect_format

    detected = detect_format(dst)
    if detected is not None:
        return detected
    lowered = dst.lower()
    if lowered.endswith(SQLITE_EXTENSIONS):
        return "sqlite"
    if lowered.endswith((".jsonl", ".json")):
        return "jsonl"
    return "sqlite" if src_name == "jsonl" else "jsonl"


def migrate_store(
    src_path: str | os.PathLike[str],
    dst_path: str | os.PathLike[str],
    src_backend: str | None = None,
    dst_backend: str | None = None,
) -> int:
    """Copy every record of one store into a fresh store, verbatim.

    Records keep their original provenance stamps (an old result does
    not become "current" by being moved), and append order — and
    therefore every latest-wins query — is preserved.  The destination
    must not already contain records.  Returns the number migrated.

    Backend resolution: the source is recognised from its on-disk
    format; the destination follows its extension, falling back to the
    *other* backend so ``migrate_store("r.jsonl", "r.sqlite")`` does
    the conversion both directions without explicit arguments.
    """
    src = os.fspath(src_path)
    dst = os.fspath(dst_path)
    if os.path.abspath(src) == os.path.abspath(dst):
        raise ConfigurationError(
            "migration needs distinct source and destination paths"
        )
    if not os.path.exists(src):
        raise ConfigurationError(f"source store {src!r} does not exist")
    source = make_backend(src, src_backend)
    if dst_backend is None:
        dst_backend = _migration_target_backend(dst, source.name)
    destination = make_backend(dst, dst_backend)
    if len(destination) > 0:
        raise ConfigurationError(
            f"destination store {dst!r} already holds records; "
            f"refusing to mix histories"
        )
    # Stream in batches so a million-record history never has to fit
    # in memory (the whole point of migrating to the indexed backend).
    migrated = 0
    batch: list[dict[str, Any]] = []
    for record in source.iter_records():
        batch.append(record)
        if len(batch) >= 5000:
            destination.append_many(batch)
            migrated += len(batch)
            batch = []
    destination.append_many(batch)
    migrated += len(batch)
    destination.close()
    source.close()
    return migrated
