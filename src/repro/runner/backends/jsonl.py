"""Append-only JSON-Lines backend.

One line per record, appended with ``flush`` + ``fsync`` so a killed
campaign never loses an acknowledged append, plus a directory fsync
when the file is first created so the *name* survives a crash too.
Appends are atomic at line granularity: a writer killed mid-``write``
leaves at most one truncated trailing line, which :meth:`load`
tolerates and skips — that is what makes interrupted campaigns
resumable.

Every query is a full-file scan (O(n) in history size).  That is fine
for thousands of records and the reason the indexed
:class:`~repro.runner.backends.sqlite.SqliteBackend` exists for
millions.

Records are encoded with compact separators (no space after ``,`` or
``:``) — byte-for-byte smaller logs, decoder-compatible either way.
Binary column payloads (``bytes`` values, see
:mod:`repro.runner.codec`) are base64-wrapped on write and restored to
real ``bytes`` on read, so columnar records round-trip through the
text log unchanged.

Integrity: every line embeds a ``"check"`` CRC-32 token computed over
the rest of the line (see :mod:`repro.runner.integrity`).  Scans
verify it and *quarantine* mismatches — the damaged record is skipped
and counted (``store.jsonl.corrupt``), never yielded — so corruption
degrades to a cache miss instead of wrong data.  Lines written before
checksums existed carry no token and pass unchecked.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterator, Mapping

from ...errors import ConfigurationError
from ...faults import ACTION_TORN_WRITE, InjectedFault, fault_site
from ...telemetry import metrics
from ..codec import jsonable_bytes, payload_kind, restore_bytes
from ..integrity import (
    count_corrupt,
    new_verify_stats,
    stamp_check,
    verify_jsonable,
)
from .base import surviving_indices, validate_record

#: Compact JSON encoding shared by every write path.
_SEPARATORS = (",", ":")


def _dump(record: Mapping[str, Any]) -> str:
    """One record as a compact, sorted, checksummed JSON line body."""
    payload = jsonable_bytes(record)
    if payload is record:
        payload = dict(payload)
    return json.dumps(
        stamp_check(payload), sort_keys=True, separators=_SEPARATORS
    )


def _fsync_dir(path: str) -> None:
    """Fsync the directory containing ``path`` (no-op where unsupported)."""
    parent = os.path.dirname(os.path.abspath(path))
    try:
        fd = os.open(parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. platforms without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - not all filesystems allow it
        pass
    finally:
        os.close(fd)


class JsonlBackend:
    """Append-only JSONL persistence (see module docstring)."""

    name: str = "jsonl"

    def __init__(self, path: str | os.PathLike[str]):
        self.path = os.fspath(path)
        if os.path.isdir(self.path):
            raise ConfigurationError(
                f"store path {self.path!r} is a directory, need a file"
            )
        os.makedirs(
            os.path.dirname(os.path.abspath(self.path)), exist_ok=True
        )

    # -- writes ------------------------------------------------------------

    def append(self, record: Mapping[str, Any]) -> None:
        self.append_many([validate_record(record)])

    def append_many(self, records: list[dict[str, Any]]) -> None:
        """Append a batch with one flush+fsync for the whole batch."""
        if not records:
            return
        fired = fault_site("store.append", records[0].get("job_id"))
        lines = "".join(
            _dump(validate_record(record)) + "\n" for record in records
        )
        if fired is not None and fired.action == ACTION_TORN_WRITE:
            # Injected power-loss model: persist a truncated batch,
            # then fail the append like the crashed writer would have.
            lines = lines[: max(0, len(lines) - fired.torn_bytes)]
        # json.dumps emits pure ASCII (ensure_ascii), so the string
        # length IS the on-disk byte count — no second encode needed.
        metrics().count("store.jsonl.append.bytes", len(lines))
        created = not os.path.exists(self.path)
        with open(self.path, "a", encoding="utf-8") as handle:
            if handle.tell() > 0 and not self._ends_with_newline():
                # A previous writer was killed mid-line; start fresh so
                # the torn fragment doesn't swallow this record too.
                handle.write("\n")
            handle.write(lines)
            handle.flush()
            os.fsync(handle.fileno())
        if created:
            # Make the new directory entry itself durable.
            _fsync_dir(self.path)
        if fired is not None:
            raise InjectedFault(
                f"injected torn write ({fired.torn_bytes} bytes lost) "
                f"at {self.path}"
            )

    def _ends_with_newline(self) -> bool:
        with open(self.path, "rb") as handle:
            handle.seek(-1, os.SEEK_END)
            return handle.read(1) == b"\n"

    # -- reads -------------------------------------------------------------

    def load(self) -> list[dict[str, Any]]:
        """All readable records; a torn trailing line is skipped."""
        return list(self.iter_records())

    def iter_records(self) -> Iterator[dict[str, Any]]:
        """Stream readable records without materialising the history."""
        for record, _ in self.iter_records_with_size():
            yield record

    def iter_records_with_size(
        self,
    ) -> Iterator[tuple[dict[str, Any], int]]:
        """Stream ``(record, stored_bytes)`` pairs in append order.

        ``stored_bytes`` is the on-disk footprint of the record's line
        (newline included) — what ``repro store info`` charges each
        payload kind with.
        """
        if not os.path.exists(self.path):
            return
        fault_site("store.iter")
        with open(self.path, "rb") as handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # interrupted append; partial line
                except UnicodeDecodeError as error:
                    # e.g. the jsonl backend forced onto a SQLite file.
                    raise ConfigurationError(
                        f"store path {self.path!r} is not a JSONL "
                        f"result store: {error}"
                    ) from error
                if not isinstance(record, dict):
                    continue
                if verify_jsonable(record) is False:
                    # Quarantine: checksum mismatch — skip and count,
                    # never surface damaged data.
                    metrics().count("store.jsonl.corrupt")
                    metrics().count("store.jsonl.quarantined")
                    continue
                yield restore_bytes(record), len(raw)

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_records())

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return self.iter_records()

    def _iter_winning_offsets(self, status: str | None) -> list[int]:
        """Byte offsets of the latest record per key, in append order.

        The memory-bounded half of :meth:`iter_latest_by_key`: one scan
        keeps an integer per key instead of the decoded records, so a
        million-point sweep history costs a dict of offsets, not its
        payloads.
        """
        winners: dict[str, int] = {}
        offset = 0
        with open(self.path, "rb") as handle:
            for raw in handle:
                line_at = offset
                offset += len(raw)
                line = raw.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # interrupted append; partial line
                except UnicodeDecodeError as error:
                    # e.g. the jsonl backend forced onto a SQLite file —
                    # fail loudly like iter_records, never "empty store".
                    raise ConfigurationError(
                        f"store path {self.path!r} is not a JSONL result "
                        f"store: {error}"
                    ) from error
                if not isinstance(record, dict):
                    continue
                if verify_jsonable(record) is False:
                    metrics().count("store.jsonl.corrupt")
                    metrics().count("store.jsonl.quarantined")
                    continue
                if status is not None and record.get("status") != status:
                    continue
                winners[record["key"]] = line_at
        return sorted(winners.values())

    def iter_latest_by_key(
        self, status: str | None = "ok"
    ) -> Iterator[dict[str, Any]]:
        """Stream the latest record per key without materialising them.

        Two passes over the file: the first keeps only a byte offset per
        key (latest wins), the second seeks to each winning line and
        decodes just those — peak memory is O(keys), independent of how
        much superseded history or payload the log carries.
        """
        if not os.path.exists(self.path):
            return
        fault_site("store.iter")
        offsets = self._iter_winning_offsets(status)
        if not offsets:
            return
        with open(self.path, "rb") as handle:
            for line_at in offsets:
                handle.seek(line_at)
                record = json.loads(handle.readline())
                if isinstance(record, dict):
                    # Winners were checksum-verified in the offset
                    # pass; just strip the storage-internal token.
                    record.pop("check", None)
                    yield restore_bytes(record)

    def latest_by_key(
        self, status: str | None = "ok"
    ) -> dict[str, dict[str, Any]]:
        return {
            record["key"]: record
            for record in self.iter_latest_by_key(status)
        }

    def get(self, key: str) -> dict[str, Any] | None:
        fault_site("store.get", key)
        found: dict[str, Any] | None = None
        for record in self.iter_records():
            if record["key"] == key and record.get("status") == "ok":
                found = record
        return found

    def for_job(self, job_id: str) -> list[dict[str, Any]]:
        return [
            r for r in self.iter_records() if r.get("job_id") == job_id
        ]

    def keys(self) -> set[str]:
        return {
            r["key"]
            for r in self.iter_records()
            if r.get("status") == "ok"
        }

    # -- maintenance -------------------------------------------------------

    def verify(self) -> dict[str, Any]:
        """Full-file integrity pass (see :mod:`repro.runner.integrity`).

        Counts every line: verified, unchecked (pre-checksum legacy),
        corrupt (parseable but failing its checksum, charged to its
        payload kind), and unreadable (not JSON — e.g. a torn trailing
        line).  Read-only; quarantined records stay in place.
        """
        stats = new_verify_stats(self.name)
        if not os.path.exists(self.path):
            return stats
        with open(self.path, "rb") as handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                stats["records"] += 1
                try:
                    record = json.loads(line)
                except (json.JSONDecodeError, UnicodeDecodeError):
                    stats["unreadable"] += 1
                    continue
                if not isinstance(record, dict):
                    stats["unreadable"] += 1
                    continue
                verdict = verify_jsonable(record)
                if verdict is None:
                    stats["unchecked"] += 1
                elif verdict:
                    stats["checked"] += 1
                else:
                    count_corrupt(stats, payload_kind(record))
        return stats

    def compact(self) -> int:
        """Atomically rewrite the file keeping only surviving records.

        Two streaming passes: the first keeps only the surviving record
        *indices* (an int or two per key), the second re-reads the log
        and copies just those lines — the history is never materialised.
        The replacement is written to a sibling temp file, fsynced, and
        renamed over the original, so a crash mid-compaction leaves
        either the full old log or the full new one — never a mix.
        """
        total = 0

        def counted() -> Iterator[dict[str, Any]]:
            nonlocal total
            for record in self.iter_records():
                total += 1
                yield record

        keep = set(surviving_indices(counted()))
        dropped = total - len(keep)
        if dropped == 0:
            return 0
        tmp_path = self.path + ".compact.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for index, record in enumerate(self.iter_records()):
                if index in keep:
                    handle.write(_dump(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        _fsync_dir(self.path)
        return dropped

    def close(self) -> None:
        """Nothing held open between calls."""
