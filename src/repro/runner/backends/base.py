"""The storage abstraction behind :class:`~repro.runner.store.ResultStore`.

A backend persists plain-JSON job-result records and answers the small
query vocabulary the cache and campaign layers need.  Keeping the
protocol this narrow is what lets an append-only JSONL file and an
indexed SQLite database sit behind the same :class:`ResultStore` facade
— and what will let a remote/distributed backend slot in later without
another store rewrite.

Semantics shared by every backend:

* **append order is the log order** — ``load()`` returns records in the
  order they were appended, and "latest" always means "appended last",
* **latest ``ok`` wins** — ``get(key)`` returns the newest record for
  ``key`` whose status is ``"ok"`` (a re-run supersedes a failure),
* **compaction is lossy but cache-preserving** — ``compact()`` keeps,
  per key, the newest record overall plus the newest ``ok`` record, so
  ``get``/``keys``/``latest_by_key`` answer identically before and
  after compaction while superseded history is dropped.
"""

from __future__ import annotations

from typing import (
    Any,
    Iterable,
    Iterator,
    Mapping,
    Protocol,
    runtime_checkable,
)

from ...errors import ConfigurationError

#: Fields every record must carry (enforced on append by all backends).
REQUIRED_FIELDS = ("key", "status")


def validate_record(record: Mapping[str, Any]) -> dict[str, Any]:
    """Check required fields and return a plain-dict copy of ``record``."""
    for field in REQUIRED_FIELDS:
        if field not in record:
            raise ConfigurationError(
                "store records need at least 'key' and 'status' fields"
            )
    return dict(record)


def surviving_indices(records: Iterable[Mapping[str, Any]]) -> list[int]:
    """Indices that :meth:`StoreBackend.compact` keeps, in append order.

    Per key: the newest record overall and the newest ``ok`` record
    (usually the same one).  Shared by both concrete backends so their
    compaction semantics cannot drift apart.  Accepts any iterable —
    streaming a backend's ``iter_records()`` through it costs an
    integer or two per key, never the decoded history.
    """
    latest: dict[str, int] = {}
    latest_ok: dict[str, int] = {}
    for index, record in enumerate(records):
        key = record["key"]
        latest[key] = index
        if record.get("status") == "ok":
            latest_ok[key] = index
    return sorted(set(latest.values()) | set(latest_ok.values()))


@runtime_checkable
class StoreBackend(Protocol):
    """What a result-store persistence layer must provide.

    Concrete implementations: :class:`~repro.runner.backends.jsonl
    .JsonlBackend` (append-only file, O(n) scans) and
    :class:`~repro.runner.backends.sqlite.SqliteBackend` (WAL-mode
    SQLite, O(log n) indexed lookups).
    """

    #: Registry name of the backend (``"jsonl"`` / ``"sqlite"``).
    name: str
    #: Filesystem path the backend persists to.
    path: str

    def append(self, record: Mapping[str, Any]) -> None:
        """Durably append one validated record to the log."""
        ...

    def append_many(self, records: list[dict[str, Any]]) -> None:
        """Append a batch in order, amortising durability costs."""
        ...

    def load(self) -> list[dict[str, Any]]:
        """Every readable record, in append order."""
        ...

    def iter_records(self) -> Iterator[dict[str, Any]]:
        """Stream records in append order without materialising them."""
        ...

    def iter_records_with_size(
        self,
    ) -> Iterator[tuple[dict[str, Any], int]]:
        """Stream ``(record, stored_bytes)`` pairs in append order.

        ``stored_bytes`` is the record's persisted footprint (JSONL:
        line bytes; SQLite: JSON text plus native blob), which is what
        lets ``repro store info`` attribute disk usage per payload
        kind without re-encoding anything.
        """
        ...

    def get(self, key: str) -> dict[str, Any] | None:
        """Latest ``ok`` record for one content key (``None`` if absent)."""
        ...

    def latest_by_key(
        self, status: str | None = "ok"
    ) -> dict[str, dict[str, Any]]:
        """Latest record per key, optionally filtered by status."""
        ...

    def iter_latest_by_key(
        self, status: str | None = "ok"
    ) -> Iterator[dict[str, Any]]:
        """Stream the latest record per key without materialising them.

        Same winners as :meth:`latest_by_key`, yielded in the append
        order of the winning records; peak memory stays O(keys) of
        bookkeeping (JSONL: byte offsets) or O(1) (SQLite: an index
        walk), never the decoded record set.
        """
        ...

    def for_job(self, job_id: str) -> list[dict[str, Any]]:
        """All records for one display id, in append order."""
        ...

    def keys(self) -> set[str]:
        """Content keys with at least one ``ok`` record."""
        ...

    def compact(self) -> int:
        """Drop superseded history; return how many records were removed."""
        ...

    def verify(self) -> dict[str, Any]:
        """Full integrity pass over the persisted history (read-only).

        Returns the :func:`~repro.runner.integrity.new_verify_stats`
        shape: total records, checksum-verified / legacy-unchecked
        counts, corrupt records per payload kind, and unreadable
        entries.  Scans never crash on damage — corrupt records are
        quarantined (skipped and counted) here and on every read path.
        """
        ...

    def close(self) -> None:
        """Release any held resources (idempotent)."""
        ...

    def __len__(self) -> int:
        ...

    def __iter__(self) -> Iterator[dict[str, Any]]:
        ...
