"""Pluggable persistence backends for the campaign result store.

Two interchangeable implementations of the
:class:`~repro.runner.backends.base.StoreBackend` protocol:

* :class:`~repro.runner.backends.jsonl.JsonlBackend` — append-only
  JSON-Lines file; human-greppable, torn-write tolerant, O(n) queries,
* :class:`~repro.runner.backends.sqlite.SqliteBackend` — WAL-mode
  SQLite with key/job/time indexes; O(log n) queries at million-record
  scale.

:func:`make_backend`/:func:`resolve_backend_name` implement the
selection policy used by :class:`~repro.runner.store.ResultStore`:
an explicit argument wins, then the on-disk format of an existing
store (a SQLite file is recognised by its magic header, any other
non-empty file is JSONL), then the ``REPRO_STORE_BACKEND`` environment
variable, then the path extension, defaulting to JSONL.
"""

from __future__ import annotations

import os
from typing import Callable

from ...errors import ConfigurationError
from .base import StoreBackend, surviving_indices, validate_record
from .jsonl import JsonlBackend
from .sqlite import SqliteBackend

#: Environment variable naming the default backend (used by the CI
#: matrix to exercise the whole suite against each backend).
BACKEND_ENV_VAR = "REPRO_STORE_BACKEND"

#: Registry of constructable backends by name.
BACKENDS: dict[str, Callable[[str], StoreBackend]] = {
    JsonlBackend.name: JsonlBackend,
    SqliteBackend.name: SqliteBackend,
}

#: Path extensions that imply the SQLite backend for new stores.
SQLITE_EXTENSIONS = (".sqlite", ".sqlite3", ".db")

#: First bytes of every SQLite database file.
_SQLITE_MAGIC = b"SQLite format 3\x00"


def _check_name(name: str) -> str:
    if name not in BACKENDS:
        known = ", ".join(sorted(BACKENDS))
        raise ConfigurationError(
            f"unknown store backend {name!r}; known: {known}"
        )
    return name


def detect_format(path: str) -> str | None:
    """Backend name matching an existing store file, or ``None``.

    A non-empty file either starts with the SQLite magic header or is
    taken to be JSONL; an absent or empty file has no format yet.
    """
    try:
        with open(path, "rb") as handle:
            head = handle.read(len(_SQLITE_MAGIC))
    except OSError:
        return None
    if not head:
        return None
    if head == _SQLITE_MAGIC:
        return SqliteBackend.name
    return JsonlBackend.name


def resolve_backend_name(
    path: str | os.PathLike[str], backend: str | None = None
) -> str:
    """Pick the backend for ``path`` (policy in the module docstring)."""
    if backend is not None:
        return _check_name(backend)
    detected = detect_format(os.fspath(path))
    if detected is not None:
        return detected
    env = os.environ.get(BACKEND_ENV_VAR)
    if env:
        return _check_name(env)
    if os.fspath(path).lower().endswith(SQLITE_EXTENSIONS):
        return SqliteBackend.name
    return JsonlBackend.name


def make_backend(
    path: str | os.PathLike[str], backend: str | None = None
) -> StoreBackend:
    """Construct the resolved backend for ``path``."""
    return BACKENDS[resolve_backend_name(path, backend)](os.fspath(path))


__all__ = [
    "BACKENDS",
    "BACKEND_ENV_VAR",
    "JsonlBackend",
    "SQLITE_EXTENSIONS",
    "SqliteBackend",
    "StoreBackend",
    "detect_format",
    "make_backend",
    "resolve_backend_name",
    "surviving_indices",
    "validate_record",
]
