"""Indexed SQLite backend for million-record campaign histories.

The same log semantics as the JSONL backend — records in append order,
latest ``ok`` wins — but persisted in a WAL-mode SQLite database with
covering indexes on ``(key, id)``, ``(job_id, id)``, and ``stored_at``,
so ``get``/``latest_by_key`` are O(log n) index walks instead of O(n)
full-file scans.  Each record is stored verbatim as canonical JSON in
the ``record`` column; ``key``/``job_id``/``status``/``stored_at`` are
denormalised into indexed columns purely for lookup speed.

Durability: WAL journaling with ``synchronous=NORMAL`` — every
acknowledged ``append`` survives a killed process (commits are ordered
and torn writes are rolled back on recovery); only an OS-level power
loss can lose the very latest commits, which matches the JSONL
backend's torn-trailing-line tolerance in spirit.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Any, Iterator, Mapping

from ...errors import ConfigurationError
from .base import validate_record

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    id        INTEGER PRIMARY KEY AUTOINCREMENT,
    key       TEXT NOT NULL,
    job_id    TEXT,
    status    TEXT NOT NULL,
    stored_at REAL,
    record    TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_records_key ON records (key, id);
CREATE INDEX IF NOT EXISTS idx_records_job ON records (job_id, id);
CREATE INDEX IF NOT EXISTS idx_records_stored_at ON records (stored_at);
"""


class SqliteBackend:
    """WAL-mode SQLite persistence (see module docstring)."""

    name: str = "sqlite"

    def __init__(self, path: str | os.PathLike[str]):
        self.path = os.fspath(path)
        if os.path.isdir(self.path):
            raise ConfigurationError(
                f"store path {self.path!r} is a directory, need a file"
            )
        os.makedirs(
            os.path.dirname(os.path.abspath(self.path)), exist_ok=True
        )
        self._conn: sqlite3.Connection | None = None

    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            try:
                conn = sqlite3.connect(self.path)
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
                conn.executescript(_SCHEMA)
                conn.commit()
            except sqlite3.DatabaseError as error:
                raise ConfigurationError(
                    f"store path {self.path!r} is not a SQLite result "
                    f"store: {error}"
                ) from error
            self._conn = conn
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # -- writes ------------------------------------------------------------

    def append(self, record: Mapping[str, Any]) -> None:
        self.append_many([validate_record(record)])

    def append_many(self, records: list[dict[str, Any]]) -> None:
        """Insert a batch in order within a single transaction."""
        if not records:
            return
        rows: list[tuple[str, str | None, str, float | None, str]] = []
        for record in records:
            record = validate_record(record)
            stored_at = record.get("stored_at")
            rows.append(
                (
                    record["key"],
                    record.get("job_id"),
                    record["status"],
                    float(stored_at) if stored_at is not None else None,
                    json.dumps(record, sort_keys=True),
                )
            )
        conn = self._connect()
        with conn:
            conn.executemany(
                "INSERT INTO records (key, job_id, status, stored_at,"
                " record) VALUES (?, ?, ?, ?, ?)",
                rows,
            )

    # -- reads -------------------------------------------------------------

    @staticmethod
    def _decode(row: tuple[str]) -> dict[str, Any]:
        record = json.loads(row[0])
        if not isinstance(record, dict):  # pragma: no cover - defensive
            raise ConfigurationError("malformed record in SQLite store")
        return record

    def load(self) -> list[dict[str, Any]]:
        return list(self.iter_records())

    def iter_records(self) -> Iterator[dict[str, Any]]:
        """Stream records in append order from a dedicated cursor."""
        cursor = self._connect().execute(
            "SELECT record FROM records ORDER BY id"
        )
        for row in cursor:
            yield self._decode(row)

    def __len__(self) -> int:
        row = self._connect().execute(
            "SELECT COUNT(*) FROM records"
        ).fetchone()
        return int(row[0])

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.load())

    def get(self, key: str) -> dict[str, Any] | None:
        row = self._connect().execute(
            "SELECT record FROM records WHERE key = ? AND status = 'ok'"
            " ORDER BY id DESC LIMIT 1",
            (key,),
        ).fetchone()
        return self._decode(row) if row is not None else None

    def iter_latest_by_key(
        self, status: str | None = "ok"
    ) -> Iterator[dict[str, Any]]:
        """Stream the latest record per key from a dedicated cursor.

        The winners come straight off the ``(key, id)`` index in append
        order; nothing is materialised beyond SQLite's own cursor
        window, so million-record histories stream in O(1) memory.
        """
        if status is None:
            cursor = self._connect().execute(
                "SELECT record FROM records WHERE id IN"
                " (SELECT MAX(id) FROM records GROUP BY key)"
                " ORDER BY id"
            )
        else:
            cursor = self._connect().execute(
                "SELECT record FROM records WHERE id IN"
                " (SELECT MAX(id) FROM records WHERE status = ?"
                "  GROUP BY key)"
                " ORDER BY id",
                (status,),
            )
        for row in cursor:
            yield self._decode(row)

    def latest_by_key(
        self, status: str | None = "ok"
    ) -> dict[str, dict[str, Any]]:
        return {
            record["key"]: record
            for record in self.iter_latest_by_key(status)
        }

    def for_job(self, job_id: str) -> list[dict[str, Any]]:
        cursor = self._connect().execute(
            "SELECT record FROM records WHERE job_id = ? ORDER BY id",
            (job_id,),
        )
        return [self._decode(row) for row in cursor]

    def keys(self) -> set[str]:
        cursor = self._connect().execute(
            "SELECT DISTINCT key FROM records WHERE status = 'ok'"
        )
        return {row[0] for row in cursor}

    # -- maintenance -------------------------------------------------------

    def compact(self) -> int:
        """Delete superseded rows and reclaim their space.

        Keeps, per key, the newest row overall and the newest ``ok``
        row — identical semantics to the JSONL backend's rewrite (see
        :func:`~repro.runner.backends.base.surviving_indices`).
        """
        conn = self._connect()
        with conn:
            cursor = conn.execute(
                "DELETE FROM records WHERE id NOT IN ("
                " SELECT MAX(id) FROM records GROUP BY key"
                " UNION"
                " SELECT MAX(id) FROM records WHERE status = 'ok'"
                " GROUP BY key)"
            )
            dropped = cursor.rowcount
        if dropped:
            conn.execute("VACUUM")
        return int(dropped)
