"""Indexed SQLite backend for million-record campaign histories.

The same log semantics as the JSONL backend — records in append order,
latest ``ok`` wins — but persisted in a WAL-mode SQLite database with
covering indexes on ``(key, id)``, ``(job_id, id)``, and ``stored_at``,
so ``get``/``latest_by_key`` are O(log n) index walks instead of O(n)
full-file scans.  Each record is stored as canonical compact JSON in
the ``record`` column; ``key``/``job_id``/``status``/``stored_at`` are
denormalised into indexed columns purely for lookup speed.

Binary column payloads (:mod:`repro.runner.codec`) are lifted out of
the JSON text into the native ``blob`` column — raw little-endian
bytes, no base64 tax — and re-attached on decode, so the records the
cache, compaction, and migration layers see are identical to the JSONL
backend's.  Databases created before the column existed are migrated
in place with one ``ALTER TABLE`` on open.

Durability: WAL journaling with ``synchronous=NORMAL`` — every
acknowledged ``append`` survives a killed process (commits are ordered
and torn writes are rolled back on recovery); only an OS-level power
loss can lose the very latest commits, which matches the JSONL
backend's torn-trailing-line tolerance in spirit.

Integrity: each row carries a ``crc`` CRC-32 over its JSON text
chained with its native blob (:mod:`repro.runner.integrity`).  Every
decode verifies it and quarantines mismatches — the row is skipped
and counted (``store.sqlite.corrupt``), a corrupt ``get`` winner
reads as missing — so bit rot inside a blob degrades to a cache miss,
never to silently wrong column data.  Rows from databases created
before the column existed have ``crc`` NULL and pass unchecked.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Any, Iterator, Mapping

from ...errors import ConfigurationError
from ...faults import ACTION_TORN_WRITE, InjectedFault, fault_site
from ...telemetry import metrics
from ..codec import extract_blob, inject_blob, payload_kind
from ..integrity import count_corrupt, new_verify_stats, row_checksum
from .base import validate_record

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    id        INTEGER PRIMARY KEY AUTOINCREMENT,
    key       TEXT NOT NULL,
    job_id    TEXT,
    status    TEXT NOT NULL,
    stored_at REAL,
    record    TEXT NOT NULL,
    blob      BLOB,
    crc       INTEGER
);
CREATE INDEX IF NOT EXISTS idx_records_key ON records (key, id);
CREATE INDEX IF NOT EXISTS idx_records_job ON records (job_id, id);
CREATE INDEX IF NOT EXISTS idx_records_stored_at ON records (stored_at);
"""

#: Compact JSON encoding shared with the JSONL backend.
_SEPARATORS = (",", ":")


class SqliteBackend:
    """WAL-mode SQLite persistence (see module docstring)."""

    name: str = "sqlite"

    def __init__(self, path: str | os.PathLike[str]):
        self.path = os.fspath(path)
        if os.path.isdir(self.path):
            raise ConfigurationError(
                f"store path {self.path!r} is a directory, need a file"
            )
        os.makedirs(
            os.path.dirname(os.path.abspath(self.path)), exist_ok=True
        )
        self._conn: sqlite3.Connection | None = None

    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            try:
                conn = sqlite3.connect(self.path)
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
                conn.executescript(_SCHEMA)
                columns = {
                    row[1]
                    for row in conn.execute("PRAGMA table_info(records)")
                }
                if "blob" not in columns:
                    # A store created before binary payloads existed:
                    # add the column in place; old rows read back with
                    # blob NULL, exactly as they were written.
                    conn.execute(
                        "ALTER TABLE records ADD COLUMN blob BLOB"
                    )
                if "crc" not in columns:
                    # Pre-checksum store: old rows keep crc NULL and
                    # verify as "unchecked"; new appends are stamped.
                    conn.execute(
                        "ALTER TABLE records ADD COLUMN crc INTEGER"
                    )
                conn.commit()
            except sqlite3.DatabaseError as error:
                raise ConfigurationError(
                    f"store path {self.path!r} is not a SQLite result "
                    f"store: {error}"
                ) from error
            self._conn = conn
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # -- writes ------------------------------------------------------------

    def append(self, record: Mapping[str, Any]) -> None:
        self.append_many([validate_record(record)])

    def append_many(self, records: list[dict[str, Any]]) -> None:
        """Insert a batch in order within a single transaction."""
        if not records:
            return
        fired = fault_site("store.append", records[0].get("job_id"))
        rows: list[
            tuple[
                str, str | None, str, float | None, str,
                bytes | None, int,
            ]
        ] = []
        for record in records:
            record = validate_record(record)
            stored_at = record.get("stored_at")
            jsonable, blob = extract_blob(record)
            text = json.dumps(
                jsonable, sort_keys=True, separators=_SEPARATORS
            )
            rows.append(
                (
                    record["key"],
                    record.get("job_id"),
                    record["status"],
                    float(stored_at) if stored_at is not None else None,
                    text,
                    blob,
                    row_checksum(text, blob),
                )
            )
        if fired is not None and fired.action == ACTION_TORN_WRITE:
            # Injected bit-rot model: the last row's payload loses its
            # tail while the checksum still covers the full payload —
            # exactly what scans must detect and quarantine.
            key, job_id, status, stored_at_f, text, blob, crc = rows[-1]
            if blob is not None and len(blob) > 0:
                blob = blob[: max(0, len(blob) - fired.torn_bytes)]
            else:
                text = text[: max(1, len(text) - fired.torn_bytes)]
            rows[-1] = (key, job_id, status, stored_at_f, text, blob, crc)
        # JSON text is ASCII (ensure_ascii), so len() counts bytes.
        metrics().count(
            "store.sqlite.append.bytes",
            sum(
                len(row[4]) + (len(row[5]) if row[5] is not None else 0)
                for row in rows
            ),
        )
        conn = self._connect()
        with conn:
            conn.executemany(
                "INSERT INTO records (key, job_id, status, stored_at,"
                " record, blob, crc) VALUES (?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
        if fired is not None:
            raise InjectedFault(
                f"injected torn write ({fired.torn_bytes} bytes lost) "
                f"at {self.path}"
            )

    # -- reads -------------------------------------------------------------

    @staticmethod
    def _row_ok(row: tuple[str, bytes | None, int | None]) -> bool:
        """Verify one row's checksum (NULL crc = legacy, passes)."""
        return row[2] is None or row_checksum(row[0], row[1]) == row[2]

    def _decode(
        self, row: tuple[str, bytes | None, int | None]
    ) -> dict[str, Any] | None:
        """Decode one verified row; ``None`` quarantines a corrupt one."""
        if not self._row_ok(row):
            metrics().count("store.sqlite.corrupt")
            metrics().count("store.sqlite.quarantined")
            return None
        try:
            record = inject_blob(json.loads(row[0]), row[1])
        except (ValueError, ConfigurationError):
            # Unparseable despite a passing (NULL) checksum: damaged
            # legacy row — quarantine rather than crash the scan.
            metrics().count("store.sqlite.corrupt")
            metrics().count("store.sqlite.quarantined")
            return None
        if not isinstance(record, dict):  # pragma: no cover - defensive
            metrics().count("store.sqlite.corrupt")
            metrics().count("store.sqlite.quarantined")
            return None
        return record

    def load(self) -> list[dict[str, Any]]:
        return list(self.iter_records())

    def iter_records(self) -> Iterator[dict[str, Any]]:
        """Stream records in append order from a dedicated cursor."""
        fault_site("store.iter")
        cursor = self._connect().execute(
            "SELECT record, blob, crc FROM records ORDER BY id"
        )
        for row in cursor:
            record = self._decode(row)
            if record is not None:
                yield record

    def iter_records_with_size(
        self,
    ) -> Iterator[tuple[dict[str, Any], int]]:
        """Stream ``(record, stored_bytes)`` pairs in append order.

        ``stored_bytes`` counts the JSON text plus the native blob —
        the per-record payload footprint ``repro store info`` reports.
        """
        fault_site("store.iter")
        cursor = self._connect().execute(
            "SELECT record, blob, crc FROM records ORDER BY id"
        )
        for row in cursor:
            record = self._decode(row)
            if record is None:
                continue
            size = len(row[0].encode("utf-8")) + (
                len(row[1]) if row[1] is not None else 0
            )
            yield record, size

    def __len__(self) -> int:
        row = self._connect().execute(
            "SELECT COUNT(*) FROM records"
        ).fetchone()
        return int(row[0])

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.load())

    def get(self, key: str) -> dict[str, Any] | None:
        fault_site("store.get", key)
        row = self._connect().execute(
            "SELECT record, blob, crc FROM records WHERE key = ?"
            " AND status = 'ok' ORDER BY id DESC LIMIT 1",
            (key,),
        ).fetchone()
        # A corrupt winner decodes to None — a cache miss, so the
        # campaign layer recomputes instead of consuming damage.
        return self._decode(row) if row is not None else None

    def iter_latest_by_key(
        self, status: str | None = "ok"
    ) -> Iterator[dict[str, Any]]:
        """Stream the latest record per key from a dedicated cursor.

        The winners come straight off the ``(key, id)`` index in append
        order; nothing is materialised beyond SQLite's own cursor
        window, so million-record histories stream in O(1) memory.
        """
        fault_site("store.iter")
        if status is None:
            cursor = self._connect().execute(
                "SELECT record, blob, crc FROM records WHERE id IN"
                " (SELECT MAX(id) FROM records GROUP BY key)"
                " ORDER BY id"
            )
        else:
            cursor = self._connect().execute(
                "SELECT record, blob, crc FROM records WHERE id IN"
                " (SELECT MAX(id) FROM records WHERE status = ?"
                "  GROUP BY key)"
                " ORDER BY id",
                (status,),
            )
        for row in cursor:
            record = self._decode(row)
            if record is not None:
                yield record

    def latest_by_key(
        self, status: str | None = "ok"
    ) -> dict[str, dict[str, Any]]:
        return {
            record["key"]: record
            for record in self.iter_latest_by_key(status)
        }

    def for_job(self, job_id: str) -> list[dict[str, Any]]:
        cursor = self._connect().execute(
            "SELECT record, blob, crc FROM records WHERE job_id = ?"
            " ORDER BY id",
            (job_id,),
        )
        return [
            record
            for record in (self._decode(row) for row in cursor)
            if record is not None
        ]

    def keys(self) -> set[str]:
        cursor = self._connect().execute(
            "SELECT DISTINCT key FROM records WHERE status = 'ok'"
        )
        return {row[0] for row in cursor}

    # -- maintenance -------------------------------------------------------

    def verify(self) -> dict[str, Any]:
        """Full-table integrity pass (see :mod:`repro.runner.integrity`).

        Counts every row: verified, unchecked (NULL ``crc`` legacy
        rows), corrupt (failing the row checksum, charged to a payload
        kind when the JSON still parses), and unreadable (unparseable
        JSON).  Read-only; quarantined rows stay in place.
        """
        stats = new_verify_stats(self.name)
        if not os.path.exists(self.path):
            return stats
        cursor = self._connect().execute(
            "SELECT record, blob, crc FROM records ORDER BY id"
        )
        for row in cursor:
            stats["records"] += 1
            if row[2] is None:
                try:
                    parsed = json.loads(row[0])
                except ValueError:
                    stats["unreadable"] += 1
                    continue
                if not isinstance(parsed, dict):
                    stats["unreadable"] += 1
                    continue
                stats["unchecked"] += 1
                continue
            if self._row_ok(row):
                stats["checked"] += 1
                continue
            try:
                parsed = json.loads(row[0])
            except ValueError:
                stats["unreadable"] += 1
                continue
            kind = (
                payload_kind(parsed)
                if isinstance(parsed, dict)
                else "other"
            )
            count_corrupt(stats, kind)
        return stats

    def compact(self) -> int:
        """Delete superseded rows and reclaim their space.

        Keeps, per key, the newest row overall and the newest ``ok``
        row — identical semantics to the JSONL backend's rewrite (see
        :func:`~repro.runner.backends.base.surviving_indices`).
        """
        conn = self._connect()
        with conn:
            cursor = conn.execute(
                "DELETE FROM records WHERE id NOT IN ("
                " SELECT MAX(id) FROM records GROUP BY key"
                " UNION"
                " SELECT MAX(id) FROM records WHERE status = 'ok'"
                " GROUP BY key)"
            )
            dropped = cursor.rowcount
        if dropped:
            conn.execute("VACUUM")
        return int(dropped)
