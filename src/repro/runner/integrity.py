"""Record integrity: stdlib checksums and quarantine accounting.

Both store backends stamp every record with a CRC-32 checksum at
append time and verify it on every scan, so silent corruption — a
torn write past the JSON parser's tolerance, a flipped bit in a
column blob, a truncated SQLite row — is *detected and skipped*, never
returned as data.  A damaged record is quarantined in place: the scan
counts it (``store.<backend>.corrupt`` on read paths, plus a
``store.<backend>.quarantined`` telemetry counter shared with verify
scans), moves on, and the content
key it occupied simply reads as "missing", which the campaign layer
already treats as "re-compute".  Nothing crashes, nothing is silently
wrong.

The checksum is CRC-32 via :func:`zlib.crc32` — the strongest
integrity check the standard library computes at C speed (the CRC32C
polynomial itself has no stdlib implementation, and a pure-Python
table walk would tax million-record scans; the error-detection
properties here are equivalent for this purpose).  Tokens are
self-describing (``"crc32:9c3f0a11"``) so a future backend can adopt
a different algorithm without a format break.

Checksums are storage-layer-internal: the JSONL backend embeds the
token as a ``"check"`` field computed over the record's canonical
JSON *without* that field, and strips it again on read; the SQLite
backend keeps a ``crc`` column over the row's JSON text plus its
native blob.  Records written before checksums existed verify as
"unchecked" and pass — old stores stay readable, and one compaction
or migration re-stamps everything.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Mapping

#: Record field the JSONL backend stores its token in.
CHECK_FIELD = "check"

#: Token prefix naming the checksum algorithm.
CHECK_PREFIX = "crc32:"

#: Compact JSON encoding shared with the backends.
_SEPARATORS = (",", ":")


def checksum_bytes(data: bytes, value: int = 0) -> int:
    """CRC-32 of ``data`` (chainable via ``value`` like zlib.crc32)."""
    return zlib.crc32(data, value) & 0xFFFFFFFF


def check_token(data: bytes) -> str:
    """The self-describing checksum token for one payload."""
    return f"{CHECK_PREFIX}{checksum_bytes(data):08x}"


def token_ok(token: Any, data: bytes) -> bool:
    """Whether a stored token matches ``data``.

    Unknown token shapes (wrong prefix, not a string) fail closed —
    a record claiming a checksum we cannot verify is treated as
    corrupt, not waved through.
    """
    if not isinstance(token, str) or not token.startswith(CHECK_PREFIX):
        return False
    return token == check_token(data)


def canonical_body(record: Mapping[str, Any]) -> str:
    """The canonical JSON text a record's checksum covers.

    Sorted keys, compact separators, ``check`` field excluded — the
    exact line body the JSONL backend writes, reproducible from the
    parsed record because canonical JSON round-trips byte-stable
    through ``json.loads``/``json.dumps``.
    """
    if CHECK_FIELD in record:
        record = {k: v for k, v in record.items() if k != CHECK_FIELD}
    return json.dumps(record, sort_keys=True, separators=_SEPARATORS)


def stamp_check(jsonable: dict[str, Any]) -> dict[str, Any]:
    """Return ``jsonable`` with a fresh ``check`` token embedded."""
    jsonable.pop(CHECK_FIELD, None)
    body = json.dumps(jsonable, sort_keys=True, separators=_SEPARATORS)
    jsonable[CHECK_FIELD] = check_token(body.encode("utf-8"))
    return jsonable


def verify_jsonable(record: dict[str, Any]) -> bool | None:
    """Verify and strip a parsed JSONL record's ``check`` field.

    Returns ``True`` (verified), ``False`` (corrupt), or ``None``
    (legacy record with no checksum).  The ``check`` field is removed
    either way — checksums never leak to upper layers.
    """
    token = record.pop(CHECK_FIELD, None)
    if token is None:
        return None
    body = json.dumps(record, sort_keys=True, separators=_SEPARATORS)
    return token_ok(token, body.encode("utf-8"))


def row_checksum(record_json: str, blob: bytes | None) -> int:
    """The SQLite row checksum: JSON text chained with the blob."""
    value = checksum_bytes(record_json.encode("utf-8"))
    if blob is not None:
        value = checksum_bytes(blob, value)
    return value


def new_verify_stats(backend: str) -> dict[str, Any]:
    """The empty accumulator :meth:`StoreBackend.verify` fills in."""
    return {
        "backend": backend,
        "records": 0,
        "checked": 0,
        "unchecked": 0,
        "corrupt": {},
        "corrupt_total": 0,
        "unreadable": 0,
    }


def count_corrupt(stats: dict[str, Any], kind: str) -> None:
    """Charge one corrupt record to its payload kind.

    Also counts ``store.<backend>.quarantined`` in the telemetry
    registry, so dashboards see quarantine pressure from verify scans
    without parsing the stats mapping.
    """
    from ..telemetry import metrics

    stats["corrupt"][kind] = stats["corrupt"].get(kind, 0) + 1
    stats["corrupt_total"] += 1
    metrics().count(f"store.{stats['backend']}.quarantined")


def damage_total(stats: Mapping[str, Any]) -> int:
    """Records that failed verification (corrupt + unreadable)."""
    return int(stats["corrupt_total"]) + int(stats["unreadable"])
