"""Sharded sweeps: million-point grids as resumable, cached campaigns.

One ``sweep_parameter(jobs=N)`` call parallelises a grid but lives and
dies with its process.  Sharding instead splits a grid into contiguous
shards and expresses the sweep *as a campaign*: one content-hash-keyed
:class:`~repro.runner.jobs.JobSpec` per shard plus an ``after``-merge
job, all streamed through the persistent
:class:`~repro.runner.store.ResultStore`.  That buys, for free, every
property the campaign engine already has:

* **resumable** — each completed shard is cache-put under its content
  key the moment it finishes, so re-running an interrupted sweep
  resolves finished shards from cache and computes only the rest;
* **cached** — an unchanged grid re-run is pure cache hits, and a grid
  edit re-computes only the shards whose values changed (content keys
  hash the shard's values, not its position);
* **parallel** — shards fan out across the worker pool like any other
  jobs.

Shard jobs call an importable target once per shard.  With
``batch=True`` (the default) the target receives the whole shard as an
array-ready list — the natural fit for the model core's vectorised
fast paths (e.g. ``"repro.core.batch:evaluate_rate_grid"``) — and
returns either a mapping of metric name to per-point series or one
value per point.  With ``batch=False`` the target is called per point,
with :class:`~repro.errors.InfeasibleDesignError` recorded as ``inf``.

The merge job runs after every shard, reads their records back from
the store, flushes one record per grid point in batched
``append_many`` transactions (point records carry a deterministic
content key — :func:`point_key` — so any point of a swept grid is an
O(log n) store lookup), and returns a compact summary — never the
million-point payload itself.
"""

from __future__ import annotations

import math
import os
from typing import Any, Iterator, Mapping, Sequence

from ..errors import ConfigurationError, InfeasibleDesignError
from .campaign import Campaign
from .jobs import content_key, json_safe, resolve_callable
from .store import ResultStore

#: Dotted paths the shard and merge jobs resolve in worker processes.
SHARD_TARGET = "repro.runner.sharding:evaluate_shard"
MERGE_TARGET = "repro.runner.sharding:merge_shards"

#: Pseudo-kind hashed into per-point record keys.  Deliberately NOT a
#: schedulable job kind: a point record holds one point's metrics, not
#: what a single-point *job* of the target would return (that job sees
#: a scalar argument and may shape its output differently), so these
#: records must never be served as cache hits for real jobs.
POINT_KIND = "point"

#: Point records are flushed to the store in batches of this many, so a
#: million-point merge never holds more than one batch of JSON lines /
#: SQL rows beyond the one shard payload currently being drained.
#: Override per merge with ``flush_chunk=`` or globally via the
#: ``REPRO_MERGE_FLUSH_CHUNK`` environment variable.
FLUSH_CHUNK = int(os.environ.get("REPRO_MERGE_FLUSH_CHUNK", "50000"))


def shard_grid(values: Sequence[Any], shards: int) -> list[list[Any]]:
    """Split a grid into at most ``shards`` contiguous, non-empty chunks.

    Chunk sizes differ by at most one and concatenate back to the
    original grid in order.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    count = len(values)
    if count == 0:
        raise ConfigurationError("cannot shard an empty grid")
    shards = min(shards, count)
    return [
        list(values[index * count // shards : (index + 1) * count // shards])
        for index in range(shards)
    ]


def _per_point(result: Any, count: int) -> list[Any]:
    """Normalise a batch target's return value to one entry per point."""
    if isinstance(result, Mapping):
        series = {}
        for name, values in result.items():
            values = list(values)
            if len(values) != count:
                raise ConfigurationError(
                    f"batch target metric {name!r} returned {len(values)} "
                    f"values for a {count}-point shard"
                )
            series[name] = values
        return [
            {name: series[name][index] for name in series}
            for index in range(count)
        ]
    points = list(result)
    if len(points) != count:
        raise ConfigurationError(
            f"batch target returned {len(points)} values for a "
            f"{count}-point shard"
        )
    return points


def evaluate_shard(
    sweep_target: str,
    parameter: str,
    values: Sequence[Any],
    common: Mapping[str, Any] | None = None,
    batch: bool = True,
) -> dict[str, Any]:
    """Evaluate one contiguous shard of a sweep grid (worker entry point).

    Returns a JSON-safe payload carrying the shard's grid values and one
    result per point, which the merge job later reassembles in shard
    order.
    """
    func = resolve_callable(sweep_target)
    kwargs = dict(common or {})
    values = list(values)
    if batch:
        points = _per_point(func(**{parameter: values}, **kwargs), len(values))
    else:
        points = []
        for value in values:
            try:
                points.append(func(**{parameter: value}, **kwargs))
            except InfeasibleDesignError:
                points.append(math.inf)
    return {
        "parameter": parameter,
        "values": json_safe(values),
        "points": json_safe(points),
    }


class _PointSummary:
    """Streaming finite-count/min/max accumulator per numeric metric.

    Replaces the materialise-then-reduce summary so the merge job can
    fold points in as they stream past — state is three scalars per
    metric name, never the point series itself.
    """

    def __init__(self) -> None:
        self._stats: dict[str, dict[str, Any]] = {}

    def add(self, point: Any) -> None:
        items = (
            point.items()
            if isinstance(point, Mapping)
            else [("value", point)]
        )
        for name, value in items:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            stats = self._stats.setdefault(
                name, {"finite": 0, "min": None, "max": None}
            )
            value = float(value)
            if not math.isfinite(value):
                continue
            stats["finite"] += 1
            if stats["min"] is None or value < stats["min"]:
                stats["min"] = value
            if stats["max"] is None or value > stats["max"]:
                stats["max"] = value

    def as_dict(self) -> dict[str, dict[str, Any]]:
        return self._stats


def _iter_shard_payloads(
    store: ResultStore, shard_keys: Sequence[str], store_path: str
) -> Iterator[tuple[list[Any], list[Any]]]:
    """Yield each shard's ``(values, points)`` payload, one at a time.

    Only one shard payload is ever decoded at once — the caller drains
    it before the next ``store.get`` — which is what keeps the merge
    worker's footprint O(shard + chunk) instead of O(points).  Raises
    :class:`~repro.errors.ConfigurationError` when a shard has no
    ``ok`` record — the sweep was not (fully) run against this store.
    """
    for key in shard_keys:
        record = store.get(key)
        if record is None:
            raise ConfigurationError(
                f"shard {key} has no ok record in {store_path!r}; "
                "run the sweep campaign against this store first"
            )
        payload = record["value"]
        yield payload["values"], payload["points"]


def _read_shard_payloads(
    store: ResultStore, shard_keys: Sequence[str], store_path: str
) -> tuple[list[Any], list[Any]]:
    """Concatenate shard payloads from the store, in shard order.

    The materialising convenience for callers that want the whole
    series (:func:`collect_points`); the merge job itself streams
    through :func:`_iter_shard_payloads` instead.
    """
    values: list[Any] = []
    points: list[Any] = []
    for shard_values, shard_points in _iter_shard_payloads(
        store, shard_keys, store_path
    ):
        values.extend(shard_values)
        points.extend(shard_points)
    return values, points


def point_key(
    sweep_target: str,
    parameter: str,
    value: Any,
    common: Mapping[str, Any] | None = None,
) -> str:
    """Deterministic content key of one grid point of one sweep.

    The merge job files every grid point under this key, so any point
    of an already-swept grid is one indexed ``store.get`` away.  The
    key hashes :data:`POINT_KIND`, never a schedulable job kind — point
    records are a query surface, not cache entries for real jobs.
    """
    return content_key(
        POINT_KIND, sweep_target, {parameter: value, **dict(common or {})}
    )


def merge_shards(
    store_path: str,
    shard_keys: Sequence[str],
    sweep_target: str,
    parameter: str,
    prefix: str,
    common: Mapping[str, Any] | None = None,
    store_backend: str | None = None,
    flush_chunk: int | None = None,
) -> dict[str, Any]:
    """Merge shard records from the store into per-point records + summary.

    Streams per-point records shard by shard: each shard's stored
    payload is decoded on its own (every shard record is in the store
    by the time this job is scheduled — the scheduler cache-puts
    results before releasing dependents), drained into bounded
    ``ResultStore.append_many`` batches of ``flush_chunk`` records
    (default :data:`FLUSH_CHUNK`) — one durability barrier (JSONL) or
    one transaction (SQLite) per batch — and released before the next
    shard is touched.  The full point list is never materialised, so
    peak merge memory is O(shard + chunk), not O(points).  Re-merging
    after an interrupt may append duplicate point records; latest-wins
    store semantics make that harmless and ``compact()`` reclaims them.
    """
    chunk_size = flush_chunk if flush_chunk is not None else FLUSH_CHUNK
    if chunk_size < 1:
        raise ConfigurationError(
            f"flush_chunk must be >= 1, got {chunk_size}"
        )
    store = ResultStore(store_path, backend=store_backend)
    summary = _PointSummary()
    merged = 0
    flushed = 0
    try:
        chunk: list[dict[str, Any]] = []
        for values, points in _iter_shard_payloads(
            store, shard_keys, store_path
        ):
            for value, point in zip(values, points):
                summary.add(point)
                merged += 1
                chunk.append(
                    {
                        "key": point_key(
                            sweep_target, parameter, value, common
                        ),
                        "job_id": f"{prefix}[{value}]",
                        "status": "ok",
                        "value": point,
                    }
                )
                if len(chunk) >= chunk_size:
                    store.append_many(chunk)
                    flushed += len(chunk)
                    chunk = []
        store.append_many(chunk)
        flushed += len(chunk)
    finally:
        store.close()
    return {
        "parameter": parameter,
        "points": merged,
        "shards": len(shard_keys),
        "point_records": flushed,
        "metrics": summary.as_dict(),
    }


def sharded_sweep_campaign(
    name: str,
    target: str,
    parameter: str,
    values: Sequence[Any],
    *,
    store_path: str,
    shards: int = 8,
    store_backend: str | None = None,
    common: Mapping[str, Any] | None = None,
    retries: int = 0,
    batch: bool = True,
    flush_chunk: int | None = None,
) -> Campaign:
    """Build the campaign for one sharded sweep.

    Jobs ``{name}/shard0000 ... {name}/shardNNNN`` each evaluate one
    contiguous chunk of ``values`` via :func:`evaluate_shard`;
    ``{name}/merge`` runs ``after`` all of them and streams the
    per-point records into the store at ``store_path``.  Run it with
    ``run_campaign(campaign, store_path=store_path, jobs=N)`` — the
    same store makes the sweep resumable and re-runs cached.
    ``flush_chunk`` bounds the merge job's append batches (default
    :data:`FLUSH_CHUNK`); it is left out of the merge job's content key
    when unset so existing stores keep resolving their merge from
    cache.
    """
    common = dict(common or {})
    campaign = Campaign(name)
    shard_ids: list[str] = []
    shard_keys: list[str] = []
    for index, chunk in enumerate(shard_grid(values, shards)):
        job_id = f"{name}/shard{index:04d}"
        campaign.call(
            job_id,
            SHARD_TARGET,
            retries=retries,
            sweep_target=target,
            parameter=parameter,
            values=chunk,
            common=common,
            batch=batch,
        )
        shard_ids.append(job_id)
        shard_keys.append(campaign.specs[-1].key)
    merge_params: dict[str, Any] = dict(
        store_path=str(store_path),
        shard_keys=shard_keys,
        sweep_target=target,
        parameter=parameter,
        prefix=name,
        common=common,
        store_backend=store_backend,
    )
    if flush_chunk is not None:
        merge_params["flush_chunk"] = flush_chunk
    campaign.call(
        f"{name}/merge",
        MERGE_TARGET,
        after=shard_ids,
        retries=retries,
        **merge_params,
    )
    return campaign


def run_sharded_sweep(
    name: str,
    target: str,
    parameter: str,
    values: Sequence[Any],
    *,
    store_path: str,
    shards: int = 8,
    jobs: int = 1,
    store_backend: str | None = None,
    common: Mapping[str, Any] | None = None,
    retries: int = 0,
    batch: bool = True,
    flush_chunk: int | None = None,
    monitor: Any = None,
    strict: bool = True,
):
    """Build and execute a sharded sweep; return its ``CampaignResult``.

    The merge summary is at ``result.results[f"{name}/merge"].value``;
    the full per-point series reassembles with :func:`collect_points`
    (or streams through :func:`iter_points`).  The campaign's cache
    preloads only the campaign's own content keys, so re-running
    against a store already holding millions of point records never
    loads them into memory.
    """
    from .campaign import run_campaign

    campaign = sharded_sweep_campaign(
        name,
        target,
        parameter,
        values,
        store_path=store_path,
        shards=shards,
        store_backend=store_backend,
        common=common,
        retries=retries,
        batch=batch,
        flush_chunk=flush_chunk,
    )
    return run_campaign(
        campaign,
        jobs=jobs,
        store_path=store_path,
        store_backend=store_backend,
        cache_preload="specs",
        monitor=monitor,
        strict=strict,
    )


def collect_points(
    store_path: str,
    campaign: Campaign,
    store_backend: str | None = None,
) -> tuple[list[Any], list[Any]]:
    """Reassemble a sharded sweep's full ``(values, points)`` from its store.

    Streams shard records in shard order, so the caller gets the same
    series a monolithic sweep would have produced without the merge
    record ever having to carry it.  Materialises the whole grid by
    contract; use :func:`iter_points` when the consumer can stream.
    """
    shard_keys = [
        spec.key for spec in campaign.specs if spec.target == SHARD_TARGET
    ]
    store = ResultStore(store_path, backend=store_backend)
    try:
        return _read_shard_payloads(store, shard_keys, store_path)
    finally:
        store.close()


def iter_points(
    store_path: str,
    campaign: Campaign,
    store_backend: str | None = None,
) -> Iterator[tuple[Any, Any]]:
    """Stream a sharded sweep's ``(value, point)`` pairs in grid order.

    The lazy twin of :func:`collect_points`: one shard payload is
    decoded at a time and released as soon as it drains, so walking a
    10M-point sweep costs one shard of memory, not the grid.
    """
    shard_keys = [
        spec.key for spec in campaign.specs if spec.target == SHARD_TARGET
    ]
    store = ResultStore(store_path, backend=store_backend)
    try:
        for values, points in _iter_shard_payloads(
            store, shard_keys, store_path
        ):
            yield from zip(values, points)
    finally:
        store.close()
