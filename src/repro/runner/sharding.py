"""Sharded sweeps: million-point grids as resumable, cached campaigns.

One ``sweep_parameter(jobs=N)`` call parallelises a grid but lives and
dies with its process.  Sharding instead splits a grid into contiguous
shards and expresses the sweep *as a campaign*: one content-hash-keyed
:class:`~repro.runner.jobs.JobSpec` per shard plus an ``after``-merge
job, all streamed through the persistent
:class:`~repro.runner.store.ResultStore`.  That buys, for free, every
property the campaign engine already has:

* **resumable** — each completed shard is cache-put under its content
  key the moment it finishes, so re-running an interrupted sweep
  resolves finished shards from cache and computes only the rest;
* **cached** — an unchanged grid re-run is pure cache hits, and a grid
  edit re-computes only the shards whose values changed (content keys
  hash the shard's values, not its position);
* **parallel** — shards fan out across the worker pool like any other
  jobs.

Grids travel two ways.  An explicit value list is chunked as before —
each shard job carries (and hashes) its own values.  A *grid
descriptor* (``{"kind": "geomspace", "start": ..., "stop": ...,
"num": ...}``) ships only ``(descriptor, shard index, shard count)``
per job: workers materialise their own contiguous slice, so scheduling
a million-point sweep pickles a few dozen bytes per job instead of
125k floats, and content keys hash O(1) descriptors instead of O(n)
value lists.

Shard results move through the store in the **columnar binary codec**
(:mod:`repro.runner.codec`) by default: a shard's metrics are packed
as named float64/int64 column arrays in one blob, the merge job
re-chunks them into *block records* of ``flush_chunk`` points each —
one compact record per block instead of one JSON record per point —
and :func:`collect_arrays` decodes blocks straight to numpy with no
per-point Python-object hop.  ``codec="json"`` (or
``REPRO_POINT_CODEC=json``) keeps the legacy per-point record path,
and every reader transparently accepts payloads in either format, so
stores written before the codec existed keep working.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError, InfeasibleDesignError
from ..faults import fault_site
from ..telemetry import metrics, span
from . import codec as _codec
from .campaign import Campaign
from .codec import (
    CODEC_COLUMNAR,
    KIND_MAPPING,
    KIND_SCALAR,
    SCALAR_COLUMN,
    check_codec,
    default_codec,
)
from .jobs import content_key, json_safe, resolve_callable
from .store import ResultStore

#: Dotted paths the shard and merge jobs resolve in worker processes.
SHARD_TARGET = "repro.runner.sharding:evaluate_shard"
MERGE_TARGET = "repro.runner.sharding:merge_shards"

#: Pseudo-kind hashed into per-point record keys.  Deliberately NOT a
#: schedulable job kind: a point record holds one point's metrics, not
#: what a single-point *job* of the target would return (that job sees
#: a scalar argument and may shape its output differently), so these
#: records must never be served as cache hits for real jobs.
POINT_KIND = "point"

#: Pseudo-kind hashed into columnar block record keys.  Like
#: :data:`POINT_KIND`, a query surface — never a job cache entry.
BLOCK_KIND = "point-block"

#: Grid-descriptor kinds workers know how to materialise.
GRID_KINDS = ("geomspace", "linspace")

#: Point records are flushed to the store in batches of this many, so a
#: million-point merge never holds more than one batch of JSON lines /
#: SQL rows beyond the one shard payload currently being drained.  The
#: columnar merge uses the same bound as its block size (points per
#: block record).  Override per merge with ``flush_chunk=`` or
#: globally via the ``REPRO_MERGE_FLUSH_CHUNK`` environment variable.
FLUSH_CHUNK = int(os.environ.get("REPRO_MERGE_FLUSH_CHUNK", "50000"))


def shard_grid(values: Sequence[Any], shards: int) -> list[list[Any]]:
    """Split a grid into at most ``shards`` contiguous, non-empty chunks.

    Chunk sizes differ by at most one and concatenate back to the
    original grid in order.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    count = len(values)
    if count == 0:
        raise ConfigurationError("cannot shard an empty grid")
    shards = min(shards, count)
    return [
        list(values[index * count // shards : (index + 1) * count // shards])
        for index in range(shards)
    ]


# -- grid descriptors ------------------------------------------------------


def grid_descriptor(
    kind: str, start: float, stop: float, num: int
) -> dict[str, Any]:
    """A validated grid descriptor shard jobs can materialise themselves.

    Descriptors replace explicit value lists in job parameters: content
    keys hash four scalars instead of the whole grid, and each worker
    rebuilds only its own contiguous slice.
    """
    if kind not in GRID_KINDS:
        known = ", ".join(GRID_KINDS)
        raise ConfigurationError(
            f"unknown grid kind {kind!r}; known: {known}"
        )
    num = int(num)
    if num < 1:
        raise ConfigurationError(f"grid num must be >= 1, got {num}")
    start = float(start)
    stop = float(stop)
    if kind == "geomspace" and (start <= 0 or stop <= 0):
        raise ConfigurationError(
            "geomspace grids need start > 0 and stop > 0"
        )
    return {"kind": kind, "start": start, "stop": stop, "num": num}


def _coerce_grid(mapping: Mapping[str, Any]) -> dict[str, Any]:
    """Validate an arbitrary mapping as a grid descriptor."""
    return grid_descriptor(
        str(mapping.get("kind")),
        mapping.get("start", 0.0),
        mapping.get("stop", 0.0),
        mapping.get("num", 0),
    )


def materialise_grid(grid: Mapping[str, Any]) -> np.ndarray:
    """The full value array of a grid descriptor."""
    grid = _coerce_grid(grid)
    space = np.geomspace if grid["kind"] == "geomspace" else np.linspace
    return space(grid["start"], grid["stop"], grid["num"])


def shard_values(
    grid: Mapping[str, Any], shard_index: int, shard_count: int
) -> list[float]:
    """One shard's contiguous slice of a grid descriptor's values.

    Slices the fully materialised grid with the same arithmetic as
    :func:`shard_grid`, so descriptor sweeps are value-for-value
    identical to explicit-list sweeps of the same grid.
    """
    if shard_count < 1:
        raise ConfigurationError(
            f"shard_count must be >= 1, got {shard_count}"
        )
    if not 0 <= shard_index < shard_count:
        raise ConfigurationError(
            f"shard_index {shard_index} outside [0, {shard_count})"
        )
    full = materialise_grid(grid)
    count = len(full)
    lo = shard_index * count // shard_count
    hi = (shard_index + 1) * count // shard_count
    return [float(v) for v in full[lo:hi]]


def _check_series(result: Mapping[str, Any], count: int) -> dict[str, Any]:
    """Validate a batch target's per-metric series lengths.

    Numpy columns pass through as arrays — listifying them would turn
    their elements into numpy scalars, which the codec's exact-type
    checks (and the legacy JSON path) cannot represent; kept as arrays
    they take the binary fast path directly.
    """
    series: dict[str, Any] = {}
    for name, column in result.items():
        if not isinstance(column, np.ndarray):
            column = list(column)
        elif column.ndim != 1:
            raise ConfigurationError(
                f"batch target metric {name!r} returned a "
                f"{column.ndim}-dimensional array, expected one value "
                "per point"
            )
        if len(column) != count:
            raise ConfigurationError(
                f"batch target metric {name!r} returned {len(column)} "
                f"values for a {count}-point shard"
            )
        series[str(name)] = column
    return series


def evaluate_shard(
    sweep_target: str,
    parameter: str,
    values: Sequence[Any] | None = None,
    common: Mapping[str, Any] | None = None,
    batch: bool = True,
    grid: Mapping[str, Any] | None = None,
    shard_index: int | None = None,
    shard_count: int | None = None,
    codec: str | None = None,
) -> dict[str, Any]:
    """Evaluate one contiguous shard of a sweep grid (worker entry point).

    Exactly one of ``values`` (an explicit list) and ``grid`` (a
    descriptor, with ``shard_index``/``shard_count``) names the shard's
    points.  Returns the shard payload the merge job later reassembles
    in shard order: with the columnar codec (the default), a batch
    target's per-metric series are packed straight into binary column
    arrays — no per-point dicts are ever built; with ``codec="json"``
    (or for results the binary dtypes cannot represent exactly) the
    payload is the legacy ``{"values": [...], "points": [...]}`` form.
    """
    if (values is None) == (grid is None):
        raise ConfigurationError(
            "pass exactly one of values= or grid= to evaluate_shard"
        )
    if grid is not None:
        if shard_index is None or shard_count is None:
            raise ConfigurationError(
                "grid descriptors need shard_index and shard_count"
            )
        values = shard_values(grid, shard_index, shard_count)
    else:
        values = list(values)  # type: ignore[arg-type]
    chosen = check_codec(codec) if codec is not None else default_codec()
    func = resolve_callable(sweep_target)
    kwargs = dict(common or {})
    count = len(values)
    with span(
        "shard.evaluate",
        cat="sweep",
        target=sweep_target,
        points=count,
        shard=shard_index,
    ):
        return _evaluate_shard_points(
            func, parameter, values, kwargs, batch, chosen, count
        )


def _evaluate_shard_points(
    func: Any,
    parameter: str,
    values: Sequence[Any],
    kwargs: dict[str, Any],
    batch: bool,
    chosen: str,
    count: int,
) -> dict[str, Any]:
    """The compute + pack body of :func:`evaluate_shard`."""
    if batch:
        result = func(**{parameter: values}, **kwargs)
        if isinstance(result, Mapping):
            series = _check_series(result, count)
            if chosen == CODEC_COLUMNAR:
                payload = _codec.pack_series(values, series, KIND_MAPPING)
                return {"parameter": parameter, **payload}
            lists = {
                name: (
                    column.tolist()
                    if isinstance(column, np.ndarray)
                    else column
                )
                for name, column in series.items()
            }
            points: list[Any] = [
                {name: lists[name][index] for name in lists}
                for index in range(count)
            ]
        else:
            points = list(result)
            if len(points) != count:
                raise ConfigurationError(
                    f"batch target returned {len(points)} values for a "
                    f"{count}-point shard"
                )
    else:
        points = []
        for value in values:
            try:
                points.append(func(**{parameter: value}, **kwargs))
            except InfeasibleDesignError:
                points.append(math.inf)
    if chosen == CODEC_COLUMNAR:
        packed = _codec.pack_points(values, points)
        if packed is not None:
            return {"parameter": parameter, **packed}
    return {
        "parameter": parameter,
        "values": json_safe(values),
        "points": json_safe(points),
    }


class _PointSummary:
    """Streaming finite-count/min/max accumulator per numeric metric.

    Replaces the materialise-then-reduce summary so the merge job can
    fold points in as they stream past — state is three scalars per
    metric name, never the point series itself.  Columnar shards fold
    in as whole arrays (:meth:`add_columns`), producing bit-identical
    statistics to the per-point path.
    """

    def __init__(self) -> None:
        self._stats: dict[str, dict[str, Any]] = {}

    def _fold(self, name: str, value: Any) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return
        stats = self._stats.setdefault(
            name, {"finite": 0, "min": None, "max": None}
        )
        value = float(value)
        if not math.isfinite(value):
            return
        stats["finite"] += 1
        if stats["min"] is None or value < stats["min"]:
            stats["min"] = value
        if stats["max"] is None or value > stats["max"]:
            stats["max"] = value

    def add(self, point: Any) -> None:
        items = (
            point.items()
            if isinstance(point, Mapping)
            else [(SCALAR_COLUMN, point)]
        )
        for name, value in items:
            self._fold(name, value)

    def add_columns(self, columns: Mapping[str, Any]) -> None:
        """Fold whole decoded columns in one vectorised pass each."""
        for name, column in columns.items():
            if isinstance(column, np.ndarray):
                if column.dtype.kind not in "fi":
                    continue  # bools and categories, like the dict path
                stats = self._stats.setdefault(
                    name, {"finite": 0, "min": None, "max": None}
                )
                array = np.asarray(column, dtype=float)
                finite = array[np.isfinite(array)]
                if finite.size == 0:
                    continue
                stats["finite"] += int(finite.size)
                low = float(finite.min())
                high = float(finite.max())
                if stats["min"] is None or low < stats["min"]:
                    stats["min"] = low
                if stats["max"] is None or high > stats["max"]:
                    stats["max"] = high
            else:
                for value in column:
                    self._fold(name, value)

    def as_dict(self) -> dict[str, dict[str, Any]]:
        return self._stats


def _iter_shard_payloads(
    store: ResultStore, shard_keys: Sequence[str], store_path: str
) -> Iterator[dict[str, Any]]:
    """Yield each shard's stored payload, one at a time.

    Only one shard payload is ever decoded at once — the caller drains
    it before the next ``store.get`` — which is what keeps the merge
    worker's footprint O(shard + chunk) instead of O(points).  Raises
    :class:`~repro.errors.ConfigurationError` when a shard has no
    ``ok`` record — the sweep was not (fully) run against this store.
    """
    for key in shard_keys:
        record = store.get(key)
        if record is None:
            raise ConfigurationError(
                f"shard {key} has no ok record in {store_path!r}; "
                "run the sweep campaign against this store first"
            )
        yield record["value"]


def _payload_points(payload: Mapping[str, Any]) -> tuple[list[Any], list[Any]]:
    """A shard payload as ``(values, points)``, whatever its codec."""
    if _codec.is_columnar(payload):
        return _codec.unpack_points(payload)
    return payload["values"], payload["points"]


def _payload_columns(
    payload: Mapping[str, Any],
) -> tuple[Any, dict[str, Any], str] | None:
    """A shard payload as ``(values, columns, points_kind)`` arrays.

    Columnar payloads decode straight to numpy; legacy JSON payloads
    are columnised when their points are uniform (``None`` when they
    are not — the caller falls back to the per-point path).
    """
    if _codec.is_columnar(payload):
        return _codec.unpack_columns(payload)
    columnised = _codec.series_from_points(payload["points"])
    if columnised is None:
        return None
    points_kind, series = columnised
    return (
        _codec.column_to_array(payload["values"]),
        {
            name: _codec.column_to_array(column)
            for name, column in series.items()
        },
        points_kind,
    )


def point_key(
    sweep_target: str,
    parameter: str,
    value: Any,
    common: Mapping[str, Any] | None = None,
) -> str:
    """Deterministic content key of one grid point of one sweep.

    The legacy (``codec="json"``) merge files every grid point under
    this key, so any point of an already-swept grid is one indexed
    ``store.get`` away.  The key hashes :data:`POINT_KIND`, never a
    schedulable job kind — point records are a query surface, not
    cache entries for real jobs.
    """
    return content_key(
        POINT_KIND, sweep_target, {parameter: value, **dict(common or {})}
    )


def block_key(
    sweep_target: str,
    parameter: str,
    shard_keys: Sequence[str],
    index: int,
    common: Mapping[str, Any] | None = None,
) -> str:
    """Deterministic content key of one columnar block of one sweep.

    Hashes the sweep's shard keys (which themselves hash the grid
    content), so a grid edit retires the old blocks' keys wholesale —
    a stale block can never shadow a re-merged sweep.
    """
    return content_key(
        BLOCK_KIND,
        sweep_target,
        {
            "parameter": parameter,
            "common": dict(common or {}),
            "shards": list(shard_keys),
            "block": int(index),
        },
    )


class _BlockWriter:
    """Re-chunk decoded shard columns into columnar block records.

    Buffers one concatenated segment per column and emits a block
    record every ``chunk_size`` points — peak state is O(shard +
    chunk), matching the per-point merge's bound.  A schema change
    between shards (different column names) flushes the partial block
    first, so every block stays self-describing.
    """

    def __init__(
        self,
        store: ResultStore,
        chunk_size: int,
        sweep_target: str,
        parameter: str,
        shard_keys: Sequence[str],
        prefix: str,
        common: Mapping[str, Any] | None,
    ) -> None:
        self._store = store
        self._chunk = chunk_size
        self._target = sweep_target
        self._parameter = parameter
        self._shard_keys = list(shard_keys)
        self._prefix = prefix
        self._common = common
        self._values: Any = None
        self._columns: dict[str, Any] = {}
        self._kind = KIND_MAPPING
        self.blocks = 0

    def _pending(self) -> int:
        return 0 if self._values is None else len(self._values)

    def add(
        self, values: Any, columns: Mapping[str, Any], points_kind: str
    ) -> None:
        if self._values is not None and (
            set(columns) != set(self._columns)
            or points_kind != self._kind
        ):
            self.flush()
        if self._values is None:
            self._values = values
            self._columns = dict(columns)
            self._kind = points_kind
        else:
            self._values = _codec.concat_columns([self._values, values])
            self._columns = {
                name: _codec.concat_columns(
                    [self._columns[name], columns[name]]
                )
                for name in self._columns
            }
        start = 0
        while self._pending() - start >= self._chunk:
            self._emit(start, start + self._chunk)
            start += self._chunk
        if start:
            self._values = self._values[start:]
            self._columns = {
                name: column[start:]
                for name, column in self._columns.items()
            }

    def _emit(self, lo: int, hi: int) -> None:
        fault_site("merge.flush")
        with metrics().timer("merge.flush_s"):
            payload = _codec.pack_series(
                self._values[lo:hi],
                {
                    name: column[lo:hi]
                    for name, column in self._columns.items()
                },
                self._kind,
            )
            payload["block"] = self.blocks
            metrics().gauge_max(
                "merge.peak_chunk_bytes", len(payload["blob"])
            )
            self._store.append_many(
                [
                    {
                        "key": block_key(
                            self._target,
                            self._parameter,
                            self._shard_keys,
                            self.blocks,
                            self._common,
                        ),
                        "job_id": f"{self._prefix}/block{self.blocks:05d}",
                        "status": "ok",
                        "value": payload,
                    }
                ]
            )
        metrics().count("merge.blocks")
        self.blocks += 1

    def flush(self) -> None:
        """Emit whatever is buffered as one final (short) block."""
        if self._pending():
            self._emit(0, self._pending())
        self._values = None
        self._columns = {}


def merge_shards(
    store_path: str,
    shard_keys: Sequence[str],
    sweep_target: str,
    parameter: str,
    prefix: str,
    common: Mapping[str, Any] | None = None,
    store_backend: str | None = None,
    flush_chunk: int | None = None,
    codec: str | None = None,
) -> dict[str, Any]:
    """Merge shard records from the store into block records + summary.

    Streams shard payloads one at a time (every shard record is in the
    store by the time this job is scheduled — the scheduler cache-puts
    results before releasing dependents).  With the columnar codec (the
    default) each payload decodes straight to column arrays, is folded
    into the metric summary in one vectorised pass, and is re-chunked
    into **block records** of ``flush_chunk`` points each — one compact
    binary record per block, keyed by :func:`block_key`.  With
    ``codec="json"``, or for shard payloads whose points will not
    columnise, the merge files one JSON record per point under
    :func:`point_key` exactly as before.  Either way the full point
    list is never materialised: peak merge memory is O(shard + chunk),
    not O(points).  Re-merging after an interrupt may append duplicate
    records; latest-wins store semantics make that harmless and
    ``compact()`` reclaims them.
    """
    chunk_size = flush_chunk if flush_chunk is not None else FLUSH_CHUNK
    if chunk_size < 1:
        raise ConfigurationError(
            f"flush_chunk must be >= 1, got {chunk_size}"
        )
    chosen = check_codec(codec) if codec is not None else default_codec()
    store = ResultStore(store_path, backend=store_backend)
    summary = _PointSummary()
    merged = 0
    point_records = 0
    try:
        writer = _BlockWriter(
            store,
            chunk_size,
            sweep_target,
            parameter,
            shard_keys,
            prefix,
            common,
        )
        chunk: list[dict[str, Any]] = []

        def flush_points() -> None:
            nonlocal chunk, point_records
            if not chunk:
                return
            fault_site("merge.flush")
            with metrics().timer("merge.flush_s"):
                store.append_many(chunk)
            point_records += len(chunk)
            chunk = []

        with span(
            "merge",
            cat="sweep",
            target=sweep_target,
            shards=len(shard_keys),
        ):
            for payload in _iter_shard_payloads(
                store, shard_keys, store_path
            ):
                columns = (
                    _payload_columns(payload)
                    if chosen == CODEC_COLUMNAR
                    else None
                )
                if columns is not None:
                    values, series, points_kind = columns
                    summary.add_columns(series)
                    merged += len(values)
                    writer.add(values, series, points_kind)
                    continue
                # Per-point path: requested via codec="json", or a
                # payload whose points will not columnise.
                values, points = _payload_points(payload)
                for value, point in zip(values, points):
                    summary.add(point)
                    merged += 1
                    chunk.append(
                        {
                            "key": point_key(
                                sweep_target, parameter, value, common
                            ),
                            "job_id": f"{prefix}[{value}]",
                            "status": "ok",
                            "value": point,
                        }
                    )
                    if len(chunk) >= chunk_size:
                        flush_points()
            writer.flush()
            flush_points()
    finally:
        store.close()
    return {
        "parameter": parameter,
        "points": merged,
        "shards": len(shard_keys),
        "point_records": point_records,
        "block_records": writer.blocks,
        "metrics": summary.as_dict(),
    }


def sharded_sweep_campaign(
    name: str,
    target: str,
    parameter: str,
    values: Sequence[Any] | Mapping[str, Any],
    *,
    store_path: str,
    shards: int = 8,
    store_backend: str | None = None,
    common: Mapping[str, Any] | None = None,
    retries: int = 0,
    batch: bool = True,
    flush_chunk: int | None = None,
    codec: str | None = None,
) -> Campaign:
    """Build the campaign for one sharded sweep.

    Jobs ``{name}/shard0000 ... {name}/shardNNNN`` each evaluate one
    contiguous chunk of ``values`` via :func:`evaluate_shard`;
    ``{name}/merge`` runs ``after`` all of them and streams block (or
    per-point) records into the store at ``store_path``.  ``values``
    is either an explicit sequence — chunked into the job parameters —
    or a grid descriptor mapping (:func:`grid_descriptor`), in which
    case each shard job ships only ``(descriptor, shard index, shard
    count)`` and materialises its own slice.  Run it with
    ``run_campaign(campaign, store_path=store_path, jobs=N)`` — the
    same store makes the sweep resumable and re-runs cached.
    ``flush_chunk`` bounds the merge job's blocks/batches (default
    :data:`FLUSH_CHUNK`); like ``codec``, it is left out of job content
    keys when unset so existing stores keep resolving from cache.
    """
    common = dict(common or {})
    campaign = Campaign(name)
    shard_ids: list[str] = []
    shard_keys: list[str] = []
    extra: dict[str, Any] = {}
    if codec is not None:
        extra["codec"] = check_codec(codec)
    if isinstance(values, Mapping):
        grid = _coerce_grid(values)
        if shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1, got {shards}"
            )
        shard_count = min(shards, grid["num"])
        chunks: list[dict[str, Any]] = [
            dict(grid=grid, shard_index=index, shard_count=shard_count)
            for index in range(shard_count)
        ]
    else:
        chunks = [
            dict(values=chunk) for chunk in shard_grid(values, shards)
        ]
    for index, chunk_params in enumerate(chunks):
        job_id = f"{name}/shard{index:04d}"
        campaign.call(
            job_id,
            SHARD_TARGET,
            retries=retries,
            sweep_target=target,
            parameter=parameter,
            common=common,
            batch=batch,
            **chunk_params,
            **extra,
        )
        shard_ids.append(job_id)
        shard_keys.append(campaign.specs[-1].key)
    merge_params: dict[str, Any] = dict(
        store_path=str(store_path),
        shard_keys=shard_keys,
        sweep_target=target,
        parameter=parameter,
        prefix=name,
        common=common,
        store_backend=store_backend,
        **extra,
    )
    if flush_chunk is not None:
        merge_params["flush_chunk"] = flush_chunk
    campaign.call(
        f"{name}/merge",
        MERGE_TARGET,
        after=shard_ids,
        retries=retries,
        **merge_params,
    )
    return campaign


def run_sharded_sweep(
    name: str,
    target: str,
    parameter: str,
    values: Sequence[Any] | Mapping[str, Any],
    *,
    store_path: str,
    shards: int = 8,
    jobs: int = 1,
    store_backend: str | None = None,
    common: Mapping[str, Any] | None = None,
    retries: int = 0,
    batch: bool = True,
    flush_chunk: int | None = None,
    codec: str | None = None,
    monitor: Any = None,
    strict: bool = True,
    observers: Sequence[Any] = (),
    run_id: str = "",
    bus: Any = None,
    cancel: Any = None,
    executor: Any = None,
):
    """Build and execute a sharded sweep; return its ``CampaignResult``.

    The merge summary is at ``result.results[f"{name}/merge"].value``;
    the full per-point series reassembles with :func:`collect_points`
    (or streams through :func:`iter_points`, or decodes straight to
    numpy with :func:`collect_arrays`).  The campaign's cache preloads
    only the campaign's own content keys, so re-running against a
    store already holding millions of point records never loads them
    into memory.  ``executor`` picks the execution backend
    (``"serial"``/``"pool"``/``"fleet"`` or a backend instance),
    forwarded through :func:`~repro.runner.campaign.run_campaign`.
    """
    from .campaign import run_campaign

    campaign = sharded_sweep_campaign(
        name,
        target,
        parameter,
        values,
        store_path=store_path,
        shards=shards,
        store_backend=store_backend,
        common=common,
        retries=retries,
        batch=batch,
        flush_chunk=flush_chunk,
        codec=codec,
    )
    return run_campaign(
        campaign,
        jobs=jobs,
        store_path=store_path,
        store_backend=store_backend,
        cache_preload="specs",
        observers=observers,
        monitor=monitor,
        strict=strict,
        run_id=run_id,
        bus=bus,
        cancel=cancel,
        executor=executor,
    )


def _campaign_shard_keys(campaign: Campaign) -> list[str]:
    return [
        spec.key for spec in campaign.specs if spec.target == SHARD_TARGET
    ]


def collect_points(
    store_path: str,
    campaign: Campaign,
    store_backend: str | None = None,
) -> tuple[list[Any], list[Any]]:
    """Reassemble a sharded sweep's full ``(values, points)`` from its store.

    Streams shard records in shard order, so the caller gets the same
    series a monolithic sweep would have produced — columnar payloads
    are decoded back to exact per-point Python values, bit-identical
    to the JSON-dict path.  Materialises the whole grid by contract;
    use :func:`iter_points` to stream, or :func:`collect_arrays` to
    skip per-point objects entirely.
    """
    shard_keys = _campaign_shard_keys(campaign)
    store = ResultStore(store_path, backend=store_backend)
    values: list[Any] = []
    points: list[Any] = []
    try:
        for payload in _iter_shard_payloads(store, shard_keys, store_path):
            shard_vals, shard_points = _payload_points(payload)
            values.extend(shard_vals)
            points.extend(shard_points)
    finally:
        store.close()
    return values, points


def iter_points(
    store_path: str,
    campaign: Campaign,
    store_backend: str | None = None,
) -> Iterator[tuple[Any, Any]]:
    """Stream a sharded sweep's ``(value, point)`` pairs in grid order.

    The lazy twin of :func:`collect_points`: one shard payload is
    decoded at a time and released as soon as it drains, so walking a
    10M-point sweep costs one shard of memory, not the grid.
    """
    shard_keys = _campaign_shard_keys(campaign)
    store = ResultStore(store_path, backend=store_backend)
    try:
        for payload in _iter_shard_payloads(store, shard_keys, store_path):
            values, points = _payload_points(payload)
            yield from zip(values, points)
    finally:
        store.close()


@dataclass(frozen=True)
class SweepColumns:
    """A sharded sweep decoded straight to arrays.

    ``values`` is the grid; ``columns`` maps metric name to one entry
    per grid point (numpy arrays for binary columns, lists for inline
    JSON columns).  ``points_kind`` records whether the sweep target
    produced mappings (one column per metric) or plain scalars (a
    single :data:`~repro.runner.codec.SCALAR_COLUMN` column).
    """

    values: Any
    columns: dict[str, Any]
    points_kind: str

    def numeric(self) -> dict[str, np.ndarray]:
        """The float-convertible columns as float64 arrays.

        Matches the metric filter of the dict-based sweep harness:
        int and float columns qualify, bools and categories do not.
        """
        out: dict[str, np.ndarray] = {}
        for name, column in self.columns.items():
            if isinstance(column, np.ndarray):
                if column.dtype.kind in "fi":
                    out[name] = np.asarray(column, dtype=float)
            elif column and all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in column
            ):
                # Inline JSON columns (e.g. mixed int/float series)
                # still qualify when every entry is a number.
                out[name] = np.asarray(column, dtype=float)
        return out


def collect_arrays(
    store_path: str,
    campaign: Campaign,
    store_backend: str | None = None,
) -> SweepColumns:
    """Decode a sharded sweep's store records straight to numpy arrays.

    The array-native twin of :func:`collect_points`: columnar shard
    payloads are ``np.frombuffer``-decoded and concatenated with no
    per-point Python-object hop; legacy JSON payloads are columnised
    on the fly.  Raises :class:`~repro.errors.ConfigurationError` for
    sweeps whose points will not columnise (ragged mappings) — those
    need :func:`collect_points`.
    """
    shard_keys = _campaign_shard_keys(campaign)
    store = ResultStore(store_path, backend=store_backend)
    values_segments: list[Any] = []
    column_segments: dict[str, list[Any]] = {}
    points_kind: str | None = None
    try:
        for payload in _iter_shard_payloads(store, shard_keys, store_path):
            columns = _payload_columns(payload)
            if columns is None:
                raise ConfigurationError(
                    "sweep points will not columnise (ragged point "
                    "mappings?); use collect_points instead"
                )
            shard_values, shard_columns, shard_kind = columns
            if points_kind is None:
                points_kind = shard_kind
                column_segments = {name: [] for name in shard_columns}
            elif shard_kind != points_kind or set(shard_columns) != set(
                column_segments
            ):
                raise ConfigurationError(
                    "shard payloads disagree on columns; was the sweep "
                    "target changed between shards?"
                )
            values_segments.append(shard_values)
            for name, column in shard_columns.items():
                column_segments[name].append(column)
    finally:
        store.close()
    return SweepColumns(
        values=_codec.concat_columns(values_segments),
        columns={
            name: _codec.concat_columns(segments)
            for name, segments in column_segments.items()
        },
        points_kind=points_kind or KIND_SCALAR,
    )


def lookup_point(
    store_path: str,
    campaign: Campaign,
    value: Any,
    store_backend: str | None = None,
) -> Any:
    """One grid point's metrics from an already-merged sweep store.

    Walks the sweep's columnar block records (a handful of indexed
    ``get`` calls — block keys derive from the campaign's shard keys),
    decodes only the block holding ``value``, and falls back to the
    legacy per-point record under :func:`point_key` for stores merged
    with ``codec="json"``.  Returns the point's metrics (a mapping or
    scalar, matching the sweep target's shape) or ``None`` when the
    value is not a merged grid point.
    """
    shard_specs = [
        spec for spec in campaign.specs if spec.target == SHARD_TARGET
    ]
    merge_specs = [
        spec for spec in campaign.specs if spec.target == MERGE_TARGET
    ]
    if not shard_specs or not merge_specs:
        raise ConfigurationError(
            "campaign holds no sharded sweep (no shard/merge jobs)"
        )
    merge_params = merge_specs[0].params_dict()
    sweep_target = merge_params["sweep_target"]
    parameter = merge_params["parameter"]
    common = merge_params.get("common") or {}
    shard_keys = [spec.key for spec in shard_specs]
    store = ResultStore(store_path, backend=store_backend)
    try:
        index = 0
        while True:
            record = store.get(
                block_key(sweep_target, parameter, shard_keys, index, common)
            )
            if record is None:
                break
            values, columns, points_kind = _codec.unpack_columns(
                record["value"]
            )
            if isinstance(values, np.ndarray):
                hits = np.flatnonzero(values == value)
                position = int(hits[0]) if hits.size else None
            else:
                try:
                    position = values.index(value)
                except ValueError:
                    position = None
            if position is not None:
                def scalar(column: Any) -> Any:
                    entry = column[position]
                    return entry.item() if isinstance(
                        entry, np.generic
                    ) else entry
                if points_kind == KIND_SCALAR:
                    return scalar(columns[SCALAR_COLUMN])
                return {
                    name: scalar(column)
                    for name, column in columns.items()
                }
            index += 1
        legacy = store.get(point_key(sweep_target, parameter, value, common))
        return legacy["value"] if legacy is not None else None
    finally:
        store.close()
