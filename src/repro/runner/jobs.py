"""Job specifications and results for the campaign engine.

A :class:`JobSpec` names one unit of work — an experiment from the
registry or an importable callable — together with its parameters,
dependencies, and retry budget.  Its :attr:`~JobSpec.key` is a
deterministic content hash of *what* the job computes (kind, target,
parameters), so two specs that would compute the same thing share a key
regardless of their display ids, which is what makes the result cache
content-addressed and stable across processes and interpreter restarts.

A :class:`JobResult` records *how* one execution of a spec went: status,
produced value, error text, attempts, and wall time.  Results convert to
and from plain-JSON records so the persistent store can hold them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..errors import ConfigurationError

#: Job kinds understood by :func:`execute`.
KIND_EXPERIMENT = "experiment"
KIND_CALLABLE = "callable"
KNOWN_KINDS = (KIND_EXPERIMENT, KIND_CALLABLE)

#: Job statuses a :class:`JobResult` can carry.
STATUS_OK = "ok"
STATUS_CACHED = "cached"
STATUS_FAILED = "failed"
STATUS_SKIPPED = "skipped"

#: Internal markers used by :func:`freeze_params` to keep frozen
#: parameters reversible (a mapping is not a plain tuple of pairs).
_MAP_MARKER = "@map"
_SEQ_MARKER = "@seq"


def freeze_params(value: Any) -> Any:
    """Recursively convert ``value`` into an immutable, picklable form.

    Mappings become sorted ``(@map, ((key, value), ...))`` tuples, lists
    and tuples become ``(@seq, (...))`` tuples, and scalars pass through.
    :func:`thaw_params` inverts the transformation.
    """
    if isinstance(value, Mapping):
        try:
            items = sorted(value.items())
        except TypeError as error:
            raise ConfigurationError(
                f"job params need sortable string keys: {error}"
            ) from None
        return (_MAP_MARKER, tuple((k, freeze_params(v)) for k, v in items))
    if isinstance(value, (list, tuple)):
        return (_SEQ_MARKER, tuple(freeze_params(v) for v in value))
    if isinstance(value, set):
        try:
            ordered = sorted(freeze_params(v) for v in value)
        except TypeError as error:
            raise ConfigurationError(
                f"set params need mutually sortable elements: {error}"
            ) from None
        return (_SEQ_MARKER, tuple(ordered))
    return value


def thaw_params(value: Any) -> Any:
    """Invert :func:`freeze_params` (mappings back to dicts, seqs to lists)."""
    if isinstance(value, tuple) and len(value) == 2:
        marker, payload = value
        if marker == _MAP_MARKER:
            return {k: thaw_params(v) for k, v in payload}
        if marker == _SEQ_MARKER:
            return [thaw_params(v) for v in payload]
    return value


def _jsonable(value: Any) -> Any:
    """Reduce ``value`` to plain JSON types, deterministically.

    Frozen config dataclasses are expanded with their qualified class
    name so e.g. a MEMS device and a generic mechanical device with the
    same fields hash differently.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            "@dataclass": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {
                f.name: _jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, Mapping):
        out = {}
        for key, val in value.items():
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"job params need string keys, got {key!r}"
                )
            out[key] = _jsonable(val)
        return out
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, set):
        try:
            return sorted(_jsonable(v) for v in value)
        except TypeError as error:
            raise ConfigurationError(
                f"set params need mutually sortable elements: {error}"
            ) from None
    raise ConfigurationError(
        f"value of type {type(value).__name__} cannot enter a job key"
    )


def canonical_json(value: Any) -> str:
    """Canonical (sorted-key, compact) JSON used for content hashing."""
    return json.dumps(
        _jsonable(value), sort_keys=True, separators=(",", ":")
    )


def content_key(kind: str, target: str, params: Any) -> str:
    """SHA-256 content hash of one job's identity.

    Stable across processes and interpreter restarts: it hashes a
    canonical JSON rendering, never ``hash()`` (which is salted).
    """
    payload = canonical_json(
        {"kind": kind, "target": target, "params": thaw_params(params)}
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class JobSpec:
    """One schedulable unit of work.

    Attributes
    ----------
    job_id:
        Display id, unique within a campaign (``"fig2a"``,
        ``"sweep[1024]"``).
    kind:
        ``"experiment"`` (``target`` is a registry experiment id) or
        ``"callable"`` (``target`` is a ``"pkg.module:function"`` path).
    target:
        What to run; defaults to ``job_id`` for experiment jobs.
    params:
        Keyword arguments for the target.  Mappings/sequences are frozen
        on construction so the spec stays hashable and picklable.
    after:
        Ids of jobs that must succeed before this one may start.
    retries:
        How many times a failed execution is retried before giving up.
    deadline_s:
        Per-attempt wall-clock budget, seconds.  An attempt still
        running when it expires is abandoned (the scheduler emits a
        ``timeout`` event) and charged against the retry budget.
        ``None`` defers to the ``REPRO_JOB_DEADLINE_S`` environment
        default, if set.
    retry_backoff_s:
        Base delay for exponential backoff between retries.  Each
        retry waits a uniformly jittered ``[0, base * 2**(attempt-1)]``
        seconds (capped), so a flapping shared resource is not hammered
        in lockstep.  ``0`` retries immediately (the historical
        behaviour).

    Neither resilience knob enters :attr:`key` — *what* a job computes
    is independent of how patiently it is executed, so changing a
    deadline never invalidates cached results.
    """

    job_id: str
    kind: str = KIND_EXPERIMENT
    target: str = ""
    params: Any = field(default_factory=dict)
    after: tuple[str, ...] = ()
    retries: int = 0
    deadline_s: float | None = None
    retry_backoff_s: float = 0.0
    _key: str = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ConfigurationError("job_id must be a non-empty string")
        if self.kind not in KNOWN_KINDS:
            raise ConfigurationError(
                f"unknown job kind {self.kind!r}; known: {KNOWN_KINDS}"
            )
        if self.retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if self.deadline_s is not None and not self.deadline_s > 0:
            raise ConfigurationError("deadline_s must be positive")
        if self.retry_backoff_s < 0:
            raise ConfigurationError("retry_backoff_s must be >= 0")
        if not self.target:
            if self.kind != KIND_EXPERIMENT:
                raise ConfigurationError(
                    f"job {self.job_id!r}: {self.kind} jobs need a target"
                )
            object.__setattr__(self, "target", self.job_id)
        object.__setattr__(self, "params", freeze_params(self.params))
        object.__setattr__(self, "after", tuple(self.after))
        # Cached eagerly: the scheduler reads .key in its hot loop.
        object.__setattr__(
            self, "_key", content_key(self.kind, self.target, self.params)
        )

    @property
    def key(self) -> str:
        """Deterministic content-hash key (kind + target + params)."""
        return self._key

    def params_dict(self) -> dict[str, Any]:
        """The frozen params as a plain keyword-argument dict."""
        thawed = thaw_params(self.params)
        if thawed is None:
            return {}
        if not isinstance(thawed, dict):
            raise ConfigurationError(
                f"job {self.job_id!r}: params must be a mapping"
            )
        return thawed


def resolve_callable(target: str) -> Callable[..., Any]:
    """Import a ``"pkg.module:function"`` target."""
    module_name, _, attr = target.partition(":")
    if not module_name or not attr:
        raise ConfigurationError(
            f"callable target must look like 'pkg.module:function', "
            f"got {target!r}"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as error:
        raise ConfigurationError(
            f"cannot import module {module_name!r}: {error}"
        ) from error
    func = module
    for part in attr.split("."):
        try:
            func = getattr(func, part)
        except AttributeError:
            raise ConfigurationError(
                f"module {module_name!r} has no attribute {attr!r}"
            ) from None
    if not callable(func):
        raise ConfigurationError(f"target {target!r} is not callable")
    return func


def execute(spec: JobSpec) -> Any:
    """Run one job spec in the current process and return its value.

    Experiment jobs return the full
    :class:`~repro.experiments.base.ExperimentResult`; callable jobs
    return whatever the target returns.  Imports are deferred so this
    module can be loaded by the registry without a cycle, and so worker
    processes resolve targets against their own interpreter.
    """
    params = spec.params_dict()
    if spec.kind == KIND_EXPERIMENT:
        from ..experiments import run_experiment

        return run_experiment(spec.target, **params)
    return resolve_callable(spec.target)(**params)


def json_safe(value: Any) -> Any:
    """Reduce a job value to JSON-storable types for the result store.

    Experiment results keep their id, title, headline scalars, notes,
    and rendered text; other dataclasses store their fields; tuples
    become lists; anything else degrades to its ``repr``.  Lossy by
    design — the store holds the *findings* (headline scalars), not
    live model objects, and must never fail to persist a result that
    already succeeded.
    """
    from ..experiments.base import ExperimentResult

    if isinstance(value, ExperimentResult):
        return {
            "experiment_id": value.experiment_id,
            "title": value.title,
            "headline": json_safe(value.headline),
            "notes": list(value.notes),
            "rendered": value.render(),
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: json_safe(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    if isinstance(value, set):
        return sorted(json_safe(v) for v in value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray)):
        # Binary column payloads (repro.runner.codec) pass through as
        # real bytes; the store backends own their encoding (base64 in
        # JSONL lines, native BLOBs in SQLite).
        return bytes(value)
    return repr(value)


@dataclass(frozen=True)
class JobResult:
    """Outcome of executing (or cache-resolving) one :class:`JobSpec`.

    Attributes
    ----------
    job_id, key:
        Echo of the spec's display id and content key.
    status:
        ``"ok"``, ``"cached"``, ``"failed"``, or ``"skipped"``.
    value:
        The produced value (an ``ExperimentResult`` for fresh experiment
        jobs; the stored JSON payload for cached results).
    error:
        Error text for failed/skipped jobs.
    attempts:
        Executions performed (0 for cached/skipped results).
    duration_s:
        Wall time of the final attempt, seconds.
    worker_pid:
        Pid of the process that ran the job (``None`` if not executed).
    telemetry:
        Metrics/spans delta recorded by the worker process during this
        attempt (``None`` for serial runs, where telemetry lands in
        the parent's registries directly).  Transport-only: excluded
        from comparisons, ``repr``, and stored records — the scheduler
        merges and drops it when the result resolves.
    """

    job_id: str
    key: str
    status: str
    value: Any = None
    error: str | None = None
    attempts: int = 0
    duration_s: float = 0.0
    worker_pid: int | None = None
    telemetry: Any = field(default=None, repr=False, compare=False)

    @property
    def succeeded(self) -> bool:
        """Whether the job's value is usable (fresh or cached)."""
        return self.status in (STATUS_OK, STATUS_CACHED)

    def headline(self) -> dict[str, Any]:
        """Headline scalars of an experiment value (``{}`` otherwise)."""
        value = self.value
        if hasattr(value, "headline"):
            return dict(value.headline)
        if isinstance(value, Mapping) and "headline" in value:
            return dict(value["headline"])
        return {}

    def to_record(self, spec: JobSpec | None = None) -> dict[str, Any]:
        """A plain-JSON record of this result for the persistent store."""
        record = {
            "job_id": self.job_id,
            "key": self.key,
            "status": self.status,
            "value": json_safe(self.value),
            "error": self.error,
            "attempts": self.attempts,
            "duration_s": self.duration_s,
            "stored_at": time.time(),
        }
        if spec is not None:
            record["kind"] = spec.kind
            record["target"] = spec.target
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "JobResult":
        """Rebuild a result from a store record."""
        return cls(
            job_id=record["job_id"],
            key=record["key"],
            status=record["status"],
            value=record.get("value"),
            error=record.get("error"),
            attempts=int(record.get("attempts", 0)),
            duration_s=float(record.get("duration_s", 0.0)),
        )
