"""Single-job fleet worker: run one attempt, heartbeat a lease, exit.

Launched by :class:`~repro.runner.executors.fleet.FleetExecutor` as
``repro worker --task FILE``.  The task file is a pickle carrying the
:class:`~repro.runner.jobs.JobSpec`, the attempt number, the lease
store path/key, and the result path.  Protocol:

1. append a ``running`` lease immediately (ends the startup grace),
2. heartbeat the lease every ``heartbeat_s`` from a daemon thread,
3. run the attempt (the ``queue.attempt`` fault site fires in-process,
   exactly like a pool worker),
4. write the result payload to a temp file and :func:`os.replace` it
   into place — the rename is the commit point, so the supervisor
   never reads a half-written result,
5. append a ``done``/``failed`` terminal lease and exit 0.

A job that *raises* is a structured ``failed`` payload with exit code
0 — only a crash (nonzero exit, missing result) reads as a lost
worker.  Fault sites: ``worker.heartbeat`` wraps each beat (``drop``
skips it, ``hang`` delays it, ``crash`` kills the process) and
``lease.renew`` wraps the store append itself, so chaos plans can
separate "worker stopped beating" from "lease write failed".
"""

from __future__ import annotations

import os
import pickle
import sys
import threading
import time
from typing import Any

from ...errors import ConfigurationError
from ...faults import ACTION_DROP, fault_site
from ..jobs import execute
from .base import run_one_attempt, telemetry_delta, telemetry_marks
from .fleet import LEASE_DONE, LEASE_FAILED, LEASE_RUNNING, lease_record


class _Lease:
    """The worker's half of one lease: appends against a store."""

    def __init__(
        self, lease_path: str, key: str, job_id: str, worker_id: str,
        attempt: int,
    ):
        from ..store import ResultStore

        self._store = ResultStore(lease_path, backend="jsonl")
        self._key = key
        self._job_id = job_id
        self._worker_id = worker_id
        self._attempt = attempt
        self.context = f"{job_id}#{attempt}"

    def renew(self, state: str) -> None:
        """Append one lease record (the ``lease.renew`` fault site).

        A ``drop`` fault (or any append error) is a *missed* renewal:
        the lease ages toward expiry, which is the safe direction.
        """
        fired = fault_site("lease.renew", self.context)
        if fired is not None and fired.action == ACTION_DROP:
            return
        self._store.append(
            lease_record(
                self._key, self._job_id, self._worker_id, state,
                attempt=self._attempt, pid=os.getpid(),
            )
        )

    def close(self) -> None:
        self._store.close()


def _heartbeat_loop(
    lease: _Lease, stop: threading.Event, heartbeat_s: float
) -> None:
    while not stop.wait(heartbeat_s):
        try:
            fired = fault_site("worker.heartbeat", lease.context)
            if fired is not None and fired.action == ACTION_DROP:
                continue  # a dropped beat; the supervisor sees silence
            lease.renew(LEASE_RUNNING)
        except Exception:  # noqa: BLE001 - a failed beat is a missed beat
            pass


def _write_result(result_path: str, payload: dict[str, Any]) -> None:
    tmp = result_path + ".tmp"
    with open(tmp, "wb") as handle:
        pickle.dump(payload, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, result_path)


def worker_main(task_path: str) -> int:
    """Entry point behind ``repro worker --task FILE``."""
    try:
        with open(task_path, "rb") as handle:
            task = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError) as error:
        raise ConfigurationError(
            f"unreadable worker task file {task_path!r}: {error}"
        ) from error
    spec = task["spec"]
    attempt = int(task["attempt"])
    executor_fn = task.get("fn") or execute
    lease = _Lease(
        task["lease_path"], task["lease_key"], spec.job_id,
        task["worker_id"], attempt,
    )
    try:
        lease.renew(LEASE_RUNNING)
    except Exception:  # noqa: BLE001 - still worth running the job
        pass
    stop = threading.Event()
    beater = threading.Thread(
        target=_heartbeat_loop,
        args=(lease, stop, float(task["heartbeat_s"])),
        name=f"heartbeat-{task['worker_id']}",
        daemon=True,
    )
    beater.start()
    marks = telemetry_marks()
    start = time.perf_counter()
    try:
        # Warm inside the telemetry window so the JIT cache counters
        # (kernel.cache.hit/miss) ride back on this attempt's delta —
        # that is how the supervisor can see a worker recompiled.
        from ...kernels import warm_kernels

        warm_kernels()
    except Exception:  # noqa: BLE001 - warm-up must never fail a job
        pass
    try:
        value, duration, pid = run_one_attempt(spec, executor_fn, attempt)
    except Exception as error:  # noqa: BLE001 - jobs may raise anything
        payload: dict[str, Any] = {
            "status": "error",
            "error": f"{type(error).__name__}: {error}",
            "duration_s": time.perf_counter() - start,
            "pid": os.getpid(),
            "telemetry": telemetry_delta(marks),
        }
        terminal = LEASE_FAILED
    else:
        payload = {
            "status": "ok",
            "value": value,
            "duration_s": duration,
            "pid": pid,
            "telemetry": telemetry_delta(marks),
        }
        terminal = LEASE_DONE
    stop.set()
    _write_result(task["result_path"], payload)
    try:
        lease.renew(terminal)
    finally:
        lease.close()
    return 0


def main(argv: list[str] | None = None) -> int:  # pragma: no cover
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 2 or args[0] != "--task":
        print("usage: repro worker --task FILE", file=sys.stderr)
        return 2
    return worker_main(args[1])
