"""The execution-backend protocol: submit / poll / collect / cancel.

The scheduler (:func:`repro.runner.queue.run_jobs`) owns *policy* —
dependency order, retry budgets, backoff windows, caching, events —
and delegates *mechanism* to an :class:`ExecutionBackend`: where an
attempt runs, how its completion is observed, and how its loss is
detected.  Three implementations ship:

* :class:`~repro.runner.executors.serial.SerialExecutor` — in-process,
  one attempt at a time (the debugging baseline),
* :class:`~repro.runner.executors.pool.PoolExecutor` — a local
  ``ProcessPoolExecutor`` with broken-pool isolation and deadline
  eviction (refactored out of the old ``queue._run_pool`` path),
* :class:`~repro.runner.executors.fleet.FleetExecutor` — N independent
  single-job worker subprocesses coordinated through lease records,
  with lost-worker requeue and speculative straggler re-dispatch.

A backend reports each finished attempt as an :class:`AttemptOutcome`.
The ``status`` vocabulary is deliberately small:

========== ==========================================================
``ok``      the attempt produced a value
``error``   the attempt raised; ``error`` carries the text
``timeout`` the attempt outlived its wall-clock deadline
``lost``    the attempt's worker vanished (crash, broken pool, lease
            expiry) before producing a result
========== ==========================================================

``charge`` says whether the attempt counts against the spec's retry
budget (an attempt that never started is refunded); ``requeue`` forces
a re-run regardless of budget (pool-break suspects must re-run in
isolation even with zero retries — that is how the culprit is found).
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable

from ...errors import ConfigurationError
from ...faults import fault_site
from ...telemetry import metrics, recorder, span
from ..jobs import JobSpec

#: The per-spec execution callable (same shape run_jobs always took).
ExecutorFn = Callable[[JobSpec], Any]

#: Environment variable selecting the default execution backend.
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"

KIND_SERIAL = "serial"
KIND_POOL = "pool"
KIND_FLEET = "fleet"
EXECUTOR_KINDS = (KIND_SERIAL, KIND_POOL, KIND_FLEET)

OUTCOME_OK = "ok"
OUTCOME_ERROR = "error"
OUTCOME_TIMEOUT = "timeout"
OUTCOME_LOST = "lost"


class DeadlineExceeded(Exception):
    """An attempt outlived its wall-clock deadline."""

    def __init__(self, deadline_s: float):
        super().__init__(f"deadline exceeded ({deadline_s:g}s)")
        self.deadline_s = deadline_s


@dataclass(frozen=True)
class AttemptOutcome:
    """What one dispatched attempt came back as (see module docstring)."""

    ticket: str
    job_id: str
    attempt: int
    status: str
    value: Any = None
    error: str = ""
    duration_s: float = 0.0
    worker_pid: int = 0
    telemetry: Any = None
    #: Whether the attempt counts against the spec's retry budget.
    charge: bool = True
    #: Re-run regardless of budget (pool-break suspects, refunds).
    requeue: bool = False


@dataclass(frozen=True)
class WorkerInfo:
    """Identity and liveness of one backend worker."""

    worker_id: str
    pid: int
    state: str
    job_id: str = ""
    attempt: int = 0
    last_beat: float = field(default=0.0, compare=False)


class ExecutionBackend(ABC):
    """Where attempts run.  One instance serves exactly one run."""

    name: str = "backend"

    @abstractmethod
    def capacity(self) -> int:
        """Max concurrent attempts the scheduler should keep in flight."""

    @abstractmethod
    def submit(
        self, spec: JobSpec, attempt: int, deadline_s: float | None
    ) -> str:
        """Dispatch one attempt; returns an opaque ticket id."""

    @abstractmethod
    def poll(self, timeout: float | None) -> list[str]:
        """Tickets with an outcome ready to :meth:`collect`.

        Blocks up to ``timeout`` seconds (``None`` = until the backend's
        own next wake point) and may return an empty list — the
        scheduler loops.
        """

    @abstractmethod
    def collect(self, ticket: str) -> AttemptOutcome:
        """The outcome of one ready ticket (consumes it)."""

    @abstractmethod
    def cancel(self, ticket: str) -> bool:
        """Try to abort one in-flight attempt.

        True means the attempt is gone and will never produce an
        outcome; False means it cannot be interrupted (process-pool
        workers) and will complete normally.
        """

    @abstractmethod
    def shutdown(self) -> None:
        """Release every resource; the instance is finished."""

    def workers(self) -> tuple[WorkerInfo, ...]:
        """Liveness snapshot of the backend's workers (may be empty)."""
        return ()


def run_one_attempt(
    spec: JobSpec, executor_fn: ExecutorFn, attempt: int = 0
) -> tuple[Any, float, int]:
    """Run one attempt in this process: ``(value, duration_s, pid)``.

    The ``queue.attempt`` fault site exposes ``"<job_id>#<attempt>"``
    as its job-id context: fault rules can target every attempt of a
    job (``"shard-3#*"``), or exactly one (``"shard-3#1"``) — the only
    trigger shape that stays deterministic across worker replacement,
    since per-rule ``nth`` counters are per-process and a crashed
    worker's replacement starts counting from zero.
    """
    fault_site("queue.attempt", f"{spec.job_id}#{attempt}")
    start = time.perf_counter()
    with span("job.execute", cat="queue", job_id=spec.job_id):
        value = executor_fn(spec)
    return value, time.perf_counter() - start, os.getpid()


def telemetry_marks() -> tuple[dict[str, Any], int]:
    """Worker-side pre-attempt marks for the piggyback delta."""
    return metrics().snapshot(), recorder().mark()


def telemetry_delta(
    marks: tuple[dict[str, Any], int]
) -> dict[str, Any] | None:
    """What this process recorded since ``marks`` (None when empty)."""
    snapshot, span_mark = marks
    delta = metrics().delta_since(snapshot)
    spans = recorder().delta_since(span_mark)
    if not (delta["counters"] or delta["histograms"] or spans):
        return None
    return {"metrics": delta, "spans": spans}


def resolve_executor_kind(choice: str | None, jobs: int) -> str:
    """The backend kind for one run: explicit > env > jobs count."""
    if choice is None:
        choice = os.environ.get(EXECUTOR_ENV_VAR, "").strip() or None
    if choice is None:
        return KIND_SERIAL if jobs == 1 else KIND_POOL
    if choice not in EXECUTOR_KINDS:
        raise ConfigurationError(
            f"unknown executor {choice!r}; known: {EXECUTOR_KINDS}"
        )
    return choice


def make_executor(
    choice: str | None,
    *,
    jobs: int,
    executor_fn: ExecutorFn | None = None,
    fleet_dir: str | None = None,
) -> ExecutionBackend:
    """Build the execution backend one run will schedule over.

    ``choice`` is a kind name (``"serial"`` / ``"pool"`` / ``"fleet"``)
    or ``None`` to resolve from :data:`EXECUTOR_ENV_VAR` and the
    ``jobs`` count.  ``fleet_dir`` pins the fleet backend's lease/task
    directory (derived from the store path by the campaign layer so
    leases survive a supervisor crash in a known place).
    """
    if executor_fn is None:
        from ..jobs import execute as executor_fn
    kind = resolve_executor_kind(choice, jobs)
    if kind == KIND_SERIAL:
        from .serial import SerialExecutor

        return SerialExecutor(executor_fn=executor_fn)
    if kind == KIND_POOL:
        from .pool import PoolExecutor

        return PoolExecutor(max(jobs, 1), executor_fn=executor_fn)
    from .fleet import FleetExecutor

    return FleetExecutor(
        max(jobs, 1), executor_fn=executor_fn, fleet_dir=fleet_dir
    )
