"""Process-pool execution backend with broken-pool isolation.

The mechanism half of what ``queue.py``'s ``_run_pool``/``_batch_round``
used to be.  A worker dying hard (segfault, OOM kill) breaks the whole
:class:`~concurrent.futures.ProcessPoolExecutor`, which poisons every
in-flight future with :class:`BrokenProcessPool` — the culprit is
indistinguishable from innocent co-flying jobs.  On breakage every
in-flight attempt is reported *lost* (charged, forced requeue) and its
job marked a **suspect**: the next time the scheduler submits it, it
runs alone on a fresh single-worker pool, where a broken pool can only
mean this job killed its worker (a certain verdict, charged as an
ordinary error).  Attempts that were submitted but never picked up by
a worker are requeued *uncharged* and are not suspects — they cannot
have killed anyone.

Deadlines: a ticket's clock starts at submission.  Workers cannot be
interrupted individually, so an expired running attempt evicts its
whole pool (:func:`abandon_pool`); the expired attempt is reported as
a timeout (charged), innocent co-flyers as uncharged losses.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any

from ...telemetry import metrics
from ..jobs import JobSpec, execute
from .base import (
    OUTCOME_ERROR,
    OUTCOME_LOST,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    AttemptOutcome,
    ExecutionBackend,
    ExecutorFn,
    WorkerInfo,
    run_one_attempt,
    telemetry_delta,
    telemetry_marks,
)

#: Error text for in-flight suspects when the shared pool breaks.
BROKEN_POOL_ERROR = "worker process died (pool broken); isolating"
#: Error text when a job breaks its own single-worker pool.
SOLO_BREAK_ERROR = "worker process died (job killed its worker)"
#: Error text for submitted-but-never-started attempts on a dead pool.
QUEUED_BEHIND_ERROR = (
    "worker process died (pool broken); queued job requeued"
)
#: Error text for a future cancelled before any worker picked it up.
NEVER_STARTED_ERROR = (
    "pool replaced before the attempt started; requeued"
)
#: Error text for innocents evicted alongside an expired attempt.
EVICTED_ERROR = "pool replaced (deadline eviction); requeued"


def pool_attempt(
    spec: JobSpec, attempt: int = 0
) -> tuple[Any, float, int, Any]:
    """Module-level worker entry point (picklable by reference).

    Returns ``(value, duration_s, pid, telemetry)`` — the fourth slot
    carries the worker's metrics/spans delta for this attempt, merged
    into the parent's registries when the result resolves.
    """
    marks = telemetry_marks()
    value, duration, pid = run_one_attempt(spec, execute, attempt)
    return value, duration, pid, telemetry_delta(marks)


def pool_custom_attempt(
    spec: JobSpec, executor_fn: ExecutorFn, attempt: int = 0
) -> tuple[Any, float, int, Any]:
    """Worker entry point for a custom (picklable) executor."""
    marks = telemetry_marks()
    value, duration, pid = run_one_attempt(spec, executor_fn, attempt)
    return value, duration, pid, telemetry_delta(marks)


def warm_worker() -> None:
    """Process-pool initializer: build the reference models once.

    Runs in each worker before its first job so sweep shards start
    computing immediately instead of rebuilding the Table I config and
    model stack per call.  Warmup is best-effort — a failure here must
    never poison the pool, the job itself will surface any real error.
    """
    try:
        from ...core.batch import warm_reference_models

        warm_reference_models()
    except Exception:  # noqa: BLE001 - warmup is strictly best-effort
        pass


def make_pool(max_workers: int) -> ProcessPoolExecutor:
    """A process pool whose workers pre-build the reference models."""
    return ProcessPoolExecutor(
        max_workers=max_workers, initializer=warm_worker
    )


def abandon_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting for hung workers.

    ``ProcessPoolExecutor`` has no per-task cancellation once a worker
    is executing, so an expired deadline means replacing the pool:
    terminate every worker (hung ones included — that is the point),
    then shut down without blocking.  The executor machinery treats
    the terminations like any other abrupt worker death and unwinds
    cleanly; a later ``shutdown(wait=True)`` from a context manager
    only joins already-dead processes.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    for process in processes:
        process.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


@dataclass
class _Ticket:
    spec: JobSpec
    attempt: int
    future: Future
    pool: ProcessPoolExecutor
    solo: bool
    cutoff: float | None
    order: int


class PoolExecutor(ExecutionBackend):
    """Local process-pool backend (see module docstring)."""

    name = "pool"

    def __init__(
        self, max_workers: int, *, executor_fn: ExecutorFn = execute
    ):
        self._max_workers = max(1, int(max_workers))
        self._fn = executor_fn
        self._main: ProcessPoolExecutor | None = None
        self._tickets: dict[str, _Ticket] = {}
        self._ready: dict[str, AttemptOutcome] = {}
        self._suspects: set[str] = set()
        self._seq = 0

    def capacity(self) -> int:
        return self._max_workers

    # -- dispatch ----------------------------------------------------------

    def _submit_to(
        self, pool: ProcessPoolExecutor, spec: JobSpec, attempt: int
    ) -> Future:
        if self._fn is execute:
            return pool.submit(pool_attempt, spec, attempt)
        return pool.submit(pool_custom_attempt, spec, self._fn, attempt)

    def submit(
        self, spec: JobSpec, attempt: int, deadline_s: float | None
    ) -> str:
        self._seq += 1
        ticket = f"p{self._seq}"
        solo = spec.job_id in self._suspects
        if solo:
            pool = make_pool(1)
        else:
            if self._main is None:
                self._main = make_pool(self._max_workers)
            pool = self._main
        future = self._submit_to(pool, spec, attempt)
        cutoff = (
            time.monotonic() + deadline_s if deadline_s is not None else None
        )
        self._tickets[ticket] = _Ticket(
            spec, attempt, future, pool, solo, cutoff, self._seq
        )
        return ticket

    # -- completion --------------------------------------------------------

    def poll(self, timeout: float | None) -> list[str]:
        if self._ready:
            return list(self._ready)
        waitable = {
            ticket.future: tid for tid, ticket in self._tickets.items()
        }
        if not waitable:
            return []
        bound = timeout
        cutoffs = [
            ticket.cutoff
            for ticket in self._tickets.values()
            if ticket.cutoff is not None
        ]
        if cutoffs:
            until = max(0.0, min(cutoffs) - time.monotonic())
            bound = until if bound is None else min(bound, until)
        done, _ = wait(
            list(waitable), timeout=bound, return_when=FIRST_COMPLETED
        )
        for future in done:
            self._harvest(waitable[future])
        self._evict_overdue()
        return list(self._ready)

    def collect(self, ticket: str) -> AttemptOutcome:
        return self._ready.pop(ticket)

    def _finish(self, tid: str, outcome: AttemptOutcome) -> None:
        ticket = self._tickets.pop(tid)
        self._ready[tid] = outcome
        if ticket.solo and outcome.status in (OUTCOME_OK, OUTCOME_ERROR):
            # A healthy solo pool is single-use; broken/evicted solo
            # pools are abandoned by their handlers instead.
            if outcome.error != SOLO_BREAK_ERROR:
                ticket.pool.shutdown(wait=True)

    def _harvest(self, tid: str) -> None:
        """Turn one completed future into an outcome (idempotent)."""
        ticket = self._tickets.get(tid)
        if ticket is None:
            return  # already finished by a break/eviction handler
        try:
            value, duration, pid, telemetry = ticket.future.result(
                timeout=0
            )
        except BrokenProcessPool:
            self._handle_break(ticket.pool)
            return
        except (FutureTimeout, CancelledError):
            return  # not actually done; eviction will account for it
        except Exception as error:  # noqa: BLE001 - jobs may raise anything
            self._finish(
                tid,
                AttemptOutcome(
                    tid, ticket.spec.job_id, ticket.attempt, OUTCOME_ERROR,
                    error=f"{type(error).__name__}: {error}",
                ),
            )
            return
        self._finish(
            tid,
            AttemptOutcome(
                tid, ticket.spec.job_id, ticket.attempt, OUTCOME_OK,
                value=value, duration_s=duration, worker_pid=pid,
                telemetry=telemetry,
            ),
        )

    # -- failure handling --------------------------------------------------

    def _handle_break(self, pool: ProcessPoolExecutor) -> None:
        """Account every ticket on a broken pool, then abandon it.

        On the shared pool, at most ``max_workers`` attempts can have
        been executing when it broke — in submission order, those are
        the suspects (charged, marked for isolation).  Later tickets
        were still queued behind them: requeued uncharged, innocent.
        """
        members = sorted(
            (
                tid
                for tid, ticket in self._tickets.items()
                if ticket.pool is pool
            ),
            key=lambda tid: self._tickets[tid].order,
        )
        main = pool is self._main
        if main:
            self._main = None
        lost: list[str] = []
        for tid in members:
            ticket = self._tickets[tid]
            try:
                value, duration, pid, telemetry = ticket.future.result(
                    timeout=0
                )
            except (BrokenProcessPool, FutureTimeout, CancelledError):
                lost.append(tid)
            except Exception as error:  # noqa: BLE001
                self._finish(
                    tid,
                    AttemptOutcome(
                        tid, ticket.spec.job_id, ticket.attempt,
                        OUTCOME_ERROR,
                        error=f"{type(error).__name__}: {error}",
                    ),
                )
            else:
                self._finish(
                    tid,
                    AttemptOutcome(
                        tid, ticket.spec.job_id, ticket.attempt, OUTCOME_OK,
                        value=value, duration_s=duration, worker_pid=pid,
                        telemetry=telemetry,
                    ),
                )
        if not main:
            # Alone on a one-worker pool, a break has one explanation.
            for tid in lost:
                ticket = self._tickets[tid]
                metrics().count("executor.workers.lost")
                self._finish(
                    tid,
                    AttemptOutcome(
                        tid, ticket.spec.job_id, ticket.attempt,
                        OUTCOME_ERROR, error=SOLO_BREAK_ERROR,
                    ),
                )
        else:
            suspects = lost[: self._max_workers]
            queued_behind = lost[self._max_workers:]
            for tid in suspects:
                ticket = self._tickets[tid]
                self._suspects.add(ticket.spec.job_id)
                metrics().count("executor.workers.lost")
                self._finish(
                    tid,
                    AttemptOutcome(
                        tid, ticket.spec.job_id, ticket.attempt,
                        OUTCOME_LOST, error=BROKEN_POOL_ERROR,
                        charge=True, requeue=True,
                    ),
                )
            for tid in queued_behind:
                ticket = self._tickets[tid]
                self._finish(
                    tid,
                    AttemptOutcome(
                        tid, ticket.spec.job_id, ticket.attempt,
                        OUTCOME_LOST, error=QUEUED_BEHIND_ERROR,
                        charge=False, requeue=True,
                    ),
                )
        abandon_pool(pool)

    def _evict_overdue(self) -> None:
        """Replace pools holding expired attempts.

        Three populations, three treatments (matching the scheduler's
        historical semantics):

        * an overdue future the pool never *started* is cancelled and
          reported as an uncharged loss (queue wait ate the window —
          an undersized pool, not a hung job),
        * an overdue *running* attempt is reported as a timeout
          (charged),
        * innocent in-flight jobs lose their worker with the pool;
          they are reported as uncharged losses.
        """
        now = time.monotonic()
        overdue = {
            tid
            for tid, ticket in self._tickets.items()
            if ticket.cutoff is not None
            and now >= ticket.cutoff
            and not ticket.future.done()
        }
        if not overdue:
            return
        pools = {self._tickets[tid].pool for tid in overdue}
        for pool in pools:
            members = sorted(
                (
                    tid
                    for tid, ticket in self._tickets.items()
                    if ticket.pool is pool
                ),
                key=lambda tid: self._tickets[tid].order,
            )
            for tid in members:
                ticket = self._tickets[tid]
                if ticket.future.done():
                    self._harvest(tid)  # finished before the axe fell
                    continue
                if ticket.future.cancel():
                    self._finish(
                        tid,
                        AttemptOutcome(
                            tid, ticket.spec.job_id, ticket.attempt,
                            OUTCOME_LOST, error=NEVER_STARTED_ERROR,
                            charge=False, requeue=True,
                        ),
                    )
                elif tid in overdue:
                    self._finish(
                        tid,
                        AttemptOutcome(
                            tid, ticket.spec.job_id, ticket.attempt,
                            OUTCOME_TIMEOUT,
                        ),
                    )
                else:
                    self._finish(
                        tid,
                        AttemptOutcome(
                            tid, ticket.spec.job_id, ticket.attempt,
                            OUTCOME_LOST, error=EVICTED_ERROR,
                            charge=False, requeue=True,
                        ),
                    )
            if pool is self._main:
                self._main = None
            abandon_pool(pool)

    # -- cancellation & teardown -------------------------------------------

    def cancel(self, ticket: str) -> bool:
        entry = self._tickets.get(ticket)
        if entry is None:
            return False  # outcome already exists; collect it instead
        if entry.future.cancel():
            self._tickets.pop(ticket)
            if entry.solo:
                entry.pool.shutdown(wait=False, cancel_futures=True)
            return True
        return False  # executing in a worker; it will finish normally

    def shutdown(self) -> None:
        leftovers = {
            ticket.pool for ticket in self._tickets.values()
        }
        self._tickets.clear()
        self._ready.clear()
        self._suspects.clear()
        for pool in leftovers:
            abandon_pool(pool)
        if self._main is not None and self._main not in leftovers:
            self._main.shutdown(wait=True)
        self._main = None

    def workers(self) -> tuple[WorkerInfo, ...]:
        if self._main is None:
            return ()
        return tuple(
            WorkerInfo(worker_id=f"pool-{pid}", pid=pid, state="live")
            for pid in list(getattr(self._main, "_processes", {}) or {})
        )
