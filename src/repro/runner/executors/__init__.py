"""Pluggable execution backends for the job scheduler.

The scheduler in :mod:`repro.runner.queue` owns policy (order, retry
budgets, backoff, caching, events); the backends here own mechanism —
where an attempt runs and how its loss is detected.  See
:mod:`repro.runner.executors.base` for the protocol and
:func:`make_executor` for resolution (explicit choice >
``REPRO_EXECUTOR`` > jobs count).
"""

from .base import (
    EXECUTOR_ENV_VAR,
    EXECUTOR_KINDS,
    KIND_FLEET,
    KIND_POOL,
    KIND_SERIAL,
    OUTCOME_ERROR,
    OUTCOME_LOST,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    AttemptOutcome,
    DeadlineExceeded,
    ExecutionBackend,
    ExecutorFn,
    WorkerInfo,
    make_executor,
    resolve_executor_kind,
    run_one_attempt,
)
from .fleet import FleetExecutor
from .pool import PoolExecutor
from .serial import SerialExecutor

__all__ = [
    "EXECUTOR_ENV_VAR",
    "EXECUTOR_KINDS",
    "KIND_FLEET",
    "KIND_POOL",
    "KIND_SERIAL",
    "OUTCOME_ERROR",
    "OUTCOME_LOST",
    "OUTCOME_OK",
    "OUTCOME_TIMEOUT",
    "AttemptOutcome",
    "DeadlineExceeded",
    "ExecutionBackend",
    "ExecutorFn",
    "FleetExecutor",
    "PoolExecutor",
    "SerialExecutor",
    "WorkerInfo",
    "make_executor",
    "resolve_executor_kind",
    "run_one_attempt",
]
