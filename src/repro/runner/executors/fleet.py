"""Fleet execution backend: independent workers under lease records.

Each dispatched attempt runs in its own single-job subprocess (spawned
through the ``repro worker`` CLI entrypoint) and is tracked by **lease
records** appended to a content-keyed store (``leases.jsonl`` in the
fleet directory).  The supervisor writes ``dispatched`` when it spawns
a worker; the worker appends ``running`` heartbeats every
``heartbeat_s`` and a ``done``/``failed`` terminal on exit; the
supervisor appends ``lost`` / ``expired`` / ``cancelled`` /
``orphaned`` when it retires a worker itself.  The latest record per
lease key is the lease's current state, and the append-only history is
the fleet's transcript (uploaded as a CI artifact by the chaos job).

Fault model:

* **lost worker** — the subprocess exits without writing its result
  file: the attempt is reported lost (charged) and the scheduler
  requeues it under the job's retry budget,
* **hung or wedged worker** — the lease's heartbeat goes stale past
  ``lease_ttl_s``: the worker is killed, the lease marked ``expired``,
  and the attempt reported lost exactly as above,
* **straggler** — an attempt running far past the fleet's observed
  completion times (``straggler_factor`` × the ``straggler_pct``-th
  percentile) gets a speculative twin; the first result wins, the
  loser is killed, and duplicates are impossible structurally (one
  outcome per ticket) and deduplicated by content key downstream,
* **supervisor crash** — a new fleet over the same directory fences
  orphaned workers from the previous incarnation (kills any that are
  still alive) before dispatching, so a resumed campaign can never
  race a zombie writer; completed work resumes from the result store
  as usual.

Lease appends from worker and supervisor interleave in one JSONL file;
a torn line (killed writer) is quarantined by the store's checksum
scan, which at worst ages the lease into expiry — the safe direction.
"""

from __future__ import annotations

import math
import os
import pickle
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import IO, Any

from ...errors import ConfigurationError
from ...faults import fault_site
from ...kernels import CACHE_DIR_ENV_VAR as KERNEL_CACHE_ENV_VAR
from ...telemetry import metrics
from ..jobs import JobSpec, execute
from ..store import ResultStore
from .base import (
    OUTCOME_ERROR,
    OUTCOME_LOST,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    AttemptOutcome,
    ExecutionBackend,
    ExecutorFn,
    WorkerInfo,
)

#: Environment knobs (documented in the README env table).
LEASE_TTL_ENV_VAR = "REPRO_LEASE_TTL_S"
STRAGGLER_PCT_ENV_VAR = "REPRO_STRAGGLER_PCT"
STRAGGLER_FACTOR_ENV_VAR = "REPRO_STRAGGLER_FACTOR"
STRAGGLER_MIN_DONE_ENV_VAR = "REPRO_STRAGGLER_MIN_DONE"

DEFAULT_LEASE_TTL_S = 10.0
DEFAULT_STRAGGLER_PCT = 95.0
DEFAULT_STRAGGLER_FACTOR = 1.5
DEFAULT_STRAGGLER_MIN_DONE = 3
DEFAULT_STRAGGLER_FLOOR_S = 0.5
DEFAULT_STARTUP_GRACE_S = 15.0

#: Lease states a worker or supervisor may append.
LEASE_DISPATCHED = "dispatched"
LEASE_RUNNING = "running"
LEASE_DONE = "done"
LEASE_FAILED = "failed"
LEASE_CANCELLED = "cancelled"
LEASE_EXPIRED = "expired"
LEASE_LOST = "lost"
LEASE_ORPHANED = "orphaned"
#: States that end a lease (nothing more will be appended for it).
TERMINAL_LEASE_STATES = frozenset(
    {
        LEASE_DONE,
        LEASE_FAILED,
        LEASE_CANCELLED,
        LEASE_EXPIRED,
        LEASE_LOST,
        LEASE_ORPHANED,
    }
)

#: File name of the lease transcript inside the fleet directory.
LEASES_FILENAME = "leases.jsonl"


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be a number, got {raw!r}"
        ) from None
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {raw!r}")
    return value


def _percentile(values: list[float], pct: float) -> float:
    ordered = sorted(values)
    rank = math.ceil(pct / 100.0 * len(ordered)) - 1
    return ordered[max(0, min(len(ordered) - 1, rank))]


def lease_record(
    key: str,
    job_id: str,
    worker_id: str,
    state: str,
    *,
    attempt: int = 0,
    pid: int = 0,
) -> dict[str, Any]:
    """One lease record, shaped for the content-keyed store."""
    return {
        "key": key,
        "job_id": job_id,
        "status": "ok",
        "value": {
            "worker": worker_id,
            "state": state,
            "attempt": attempt,
            "pid": pid,
            # Monotonic beats survive wall-clock jumps and compare
            # across processes on one machine (CLOCK_MONOTONIC is
            # system-wide); the wall timestamp is for humans.
            "beat": time.monotonic(),
            "ts": time.time(),
        },
    }


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except (ProcessLookupError, PermissionError, OSError):
        return False
    return True


def _looks_like_worker(pid: int) -> bool:
    """Best-effort guard against fencing a reused pid (Linux only)."""
    try:
        with open(f"/proc/{pid}/cmdline", "rb") as handle:
            cmdline = handle.read().decode("utf-8", errors="replace")
    except OSError:
        return False
    return "repro" in cmdline and "worker" in cmdline


@dataclass
class _Proc:
    """One live worker subprocess serving one attempt."""

    worker_id: str
    lease_key: str
    popen: subprocess.Popen[bytes]
    result_path: str
    log: IO[bytes]
    started: float
    speculative: bool
    beat: float
    beaten: bool = False
    retired: bool = False
    #: Terminal lease state this proc was retired with ("" while live).
    retired_state: str = ""


@dataclass
class _Ticket:
    spec: JobSpec
    attempt: int
    cutoff: float | None
    started: float
    procs: list[_Proc] = field(default_factory=list)
    twin_dispatched: bool = False


class FleetExecutor(ExecutionBackend):
    """N independent single-job workers under lease-based supervision."""

    name = "fleet"

    def __init__(
        self,
        jobs: int,
        *,
        executor_fn: ExecutorFn = execute,
        fleet_dir: str | None = None,
        lease_ttl_s: float | None = None,
        heartbeat_s: float | None = None,
        straggler_pct: float | None = None,
        straggler_factor: float | None = None,
        straggler_min_done: int | None = None,
        straggler_floor_s: float = DEFAULT_STRAGGLER_FLOOR_S,
        startup_grace_s: float = DEFAULT_STARTUP_GRACE_S,
    ):
        self._jobs = max(1, int(jobs))
        self._fn = executor_fn
        self._ephemeral = fleet_dir is None
        self._dir = (
            tempfile.mkdtemp(prefix="repro-fleet-")
            if fleet_dir is None
            else os.path.abspath(fleet_dir)
        )
        os.makedirs(os.path.join(self._dir, "tasks"), exist_ok=True)
        os.makedirs(os.path.join(self._dir, "logs"), exist_ok=True)
        self._lease_path = os.path.join(self._dir, LEASES_FILENAME)
        self._ttl = (
            lease_ttl_s
            if lease_ttl_s is not None
            else _env_float(LEASE_TTL_ENV_VAR, DEFAULT_LEASE_TTL_S)
        )
        if not self._ttl > 0:
            raise ConfigurationError(
                f"lease_ttl_s must be positive, got {self._ttl}"
            )
        self._heartbeat_s = (
            heartbeat_s if heartbeat_s is not None else self._ttl / 3.0
        )
        self._straggler_pct = (
            straggler_pct
            if straggler_pct is not None
            else _env_float(STRAGGLER_PCT_ENV_VAR, DEFAULT_STRAGGLER_PCT)
        )
        self._straggler_factor = (
            straggler_factor
            if straggler_factor is not None
            else _env_float(
                STRAGGLER_FACTOR_ENV_VAR, DEFAULT_STRAGGLER_FACTOR
            )
        )
        self._straggler_min_done = (
            straggler_min_done
            if straggler_min_done is not None
            else int(
                _env_float(
                    STRAGGLER_MIN_DONE_ENV_VAR,
                    float(DEFAULT_STRAGGLER_MIN_DONE),
                )
            )
        )
        self._straggler_floor_s = straggler_floor_s
        self._startup_grace_s = max(startup_grace_s, self._ttl)
        self._store = ResultStore(self._lease_path, backend="jsonl")
        self._tickets: dict[str, _Ticket] = {}
        self._ready: dict[str, AttemptOutcome] = {}
        self._durations: list[float] = []
        self._seq = 0
        self._wseq = 0
        self._lease_view: dict[str, dict[str, Any]] = {}
        self._lease_view_at = -math.inf
        self._fence_orphans()

    # -- lease bookkeeping -------------------------------------------------

    @property
    def fleet_dir(self) -> str:
        """Directory holding leases, task files, and worker logs."""
        return self._dir

    @property
    def lease_path(self) -> str:
        """Path of the lease transcript (JSONL)."""
        return self._lease_path

    def _append_lease(
        self, proc_or_key: _Proc | str, job_id: str, state: str,
        *, attempt: int = 0, pid: int = 0, worker_id: str = "",
    ) -> None:
        if isinstance(proc_or_key, _Proc):
            key = proc_or_key.lease_key
            worker_id = proc_or_key.worker_id
            pid = proc_or_key.popen.pid
        else:
            key = proc_or_key
        try:
            self._store.append(
                lease_record(
                    key, job_id, worker_id, state, attempt=attempt, pid=pid
                )
            )
        except Exception:  # noqa: BLE001 - lease writes are best-effort
            # A failed supervisor append must never take the run down;
            # the lease simply ages toward expiry, the safe direction.
            pass

    def _leases(self, max_age_s: float | None = None) -> dict[str, dict[str, Any]]:
        """Latest lease state per key, cached for ``max_age_s``."""
        if max_age_s is None:
            max_age_s = min(self._ttl / 4.0, 0.2)
        now = time.monotonic()
        if now - self._lease_view_at >= max_age_s:
            try:
                self._lease_view = self._store.latest_by_key("ok")
            except Exception:  # noqa: BLE001 - a torn scan degrades, never kills
                self._lease_view = {}
            self._lease_view_at = now
        return self._lease_view

    def _fence_orphans(self) -> None:
        """Kill workers a previous (crashed) supervisor left running."""
        try:
            leases = self._store.latest_by_key("ok")
        except Exception:  # noqa: BLE001
            return
        for key, record in leases.items():
            value = record.get("value") or {}
            state = value.get("state")
            if state in TERMINAL_LEASE_STATES or state is None:
                continue
            pid = int(value.get("pid") or 0)
            if pid and _pid_alive(pid) and _looks_like_worker(pid):
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:
                    pass
            metrics().count("executor.leases.orphaned")
            self._append_lease(
                key, str(record.get("job_id") or ""), LEASE_ORPHANED,
                attempt=int(value.get("attempt") or 0), pid=pid,
                worker_id=str(value.get("worker") or ""),
            )

    # -- dispatch ----------------------------------------------------------

    def capacity(self) -> int:
        return self._jobs

    def _spawn(
        self, spec: JobSpec, attempt: int, *, speculative: bool
    ) -> _Proc:
        fault_site("executor.dispatch", f"{spec.job_id}#{attempt}")
        self._wseq += 1
        worker_id = f"w{self._wseq:04d}"
        lease_key = f"lease/{spec.key}#{attempt}#{worker_id}"
        task_path = os.path.join(self._dir, "tasks", f"{worker_id}.task")
        result_path = os.path.join(
            self._dir, "tasks", f"{worker_id}.result"
        )
        log_path = os.path.join(self._dir, "logs", f"{worker_id}.log")
        task = {
            "spec": spec,
            "attempt": attempt,
            "fn": None if self._fn is execute else self._fn,
            "lease_path": self._lease_path,
            "lease_key": lease_key,
            "worker_id": worker_id,
            "heartbeat_s": self._heartbeat_s,
            "result_path": result_path,
        }
        with open(task_path, "wb") as handle:
            pickle.dump(task, handle)
        env = os.environ.copy()
        # Pin the JIT kernel cache next to the fleet state (unless the
        # caller pinned one already): every worker subprocess shares one
        # on-disk cache, so only the first ever pays native compilation.
        env.setdefault(
            KERNEL_CACHE_ENV_VAR, os.path.join(self._dir, "kernel-cache")
        )
        # Workers are fresh interpreters (no fork): ship the parent's
        # import roots so repro itself, test helper modules, and any
        # pickled-by-reference executor all resolve in the child.
        roots = [entry or os.getcwd() for entry in sys.path]
        for existing in env.get("PYTHONPATH", "").split(os.pathsep):
            if existing:
                roots.append(existing)
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(roots))
        log = open(log_path, "ab")
        popen = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "--task", task_path],
            stdout=log,
            stderr=subprocess.STDOUT,
            env=env,
        )
        proc = _Proc(
            worker_id=worker_id,
            lease_key=lease_key,
            popen=popen,
            result_path=result_path,
            log=log,
            started=time.monotonic(),
            speculative=speculative,
            beat=time.monotonic(),
        )
        self._append_lease(
            proc, spec.job_id, LEASE_DISPATCHED, attempt=attempt
        )
        metrics().count("executor.dispatches")
        if speculative:
            metrics().count("executor.speculative.dispatched")
        return proc

    def submit(
        self, spec: JobSpec, attempt: int, deadline_s: float | None
    ) -> str:
        self._seq += 1
        ticket = f"f{self._seq}"
        now = time.monotonic()
        entry = _Ticket(
            spec=spec,
            attempt=attempt,
            cutoff=now + deadline_s if deadline_s is not None else None,
            started=now,
        )
        entry.procs.append(self._spawn(spec, attempt, speculative=False))
        self._tickets[ticket] = entry
        return ticket

    # -- supervision loop --------------------------------------------------

    def poll(self, timeout: float | None) -> list[str]:
        end = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while True:
            self._scan()
            if self._ready or not self._tickets:
                return list(self._ready)
            if end is not None and time.monotonic() >= end:
                return []
            pause = 0.02
            if end is not None:
                pause = min(pause, max(0.0, end - time.monotonic()))
            time.sleep(pause)

    def collect(self, ticket: str) -> AttemptOutcome:
        return self._ready.pop(ticket)

    def _kill(self, proc: _Proc) -> None:
        if proc.retired:
            return
        try:
            proc.popen.kill()
        except OSError:
            pass
        try:
            proc.popen.wait(timeout=5.0)
        except Exception:  # noqa: BLE001 - reaping is best-effort
            pass

    def _retire(
        self, entry: _Ticket, proc: _Proc, state: str, *, kill: bool
    ) -> None:
        if proc.retired:
            return
        if kill:
            self._kill(proc)
        proc.retired = True
        proc.retired_state = state
        try:
            proc.log.close()
        except OSError:
            pass
        self._append_lease(
            proc, entry.spec.job_id, state, attempt=entry.attempt
        )

    def _live(self, entry: _Ticket) -> list[_Proc]:
        return [proc for proc in entry.procs if not proc.retired]

    def _live_total(self) -> int:
        return sum(len(self._live(t)) for t in self._tickets.values())

    def _read_result(self, proc: _Proc) -> dict[str, Any] | None:
        if not os.path.exists(proc.result_path):
            return None
        try:
            with open(proc.result_path, "rb") as handle:
                return pickle.load(handle)
        except Exception:  # noqa: BLE001 - treat unreadable as absent
            return None

    def _settle(
        self, tid: str, entry: _Ticket, proc: _Proc, payload: dict[str, Any]
    ) -> None:
        """First completed attempt wins; the loser twin is cancelled."""
        for other in self._live(entry):
            if other is proc:
                continue
            if self._read_result(other) is not None:
                metrics().count("executor.speculative.duplicates")
            self._retire(entry, other, LEASE_CANCELLED, kill=True)
        if proc.speculative:
            metrics().count("executor.speculative.wins")
        ok = payload.get("status") == "ok"
        self._retire(
            entry, proc, LEASE_DONE if ok else LEASE_FAILED, kill=False
        )
        duration = float(payload.get("duration_s") or 0.0)
        if ok:
            # Calibrate the straggler threshold on supervisor-observed
            # wall time (spawn to result), not the in-worker duration:
            # interpreter startup and import cost are part of what a
            # replacement twin would have to pay too, so excluding
            # them would flag every short job as a straggler.
            self._durations.append(time.monotonic() - proc.started)
        self._ready[tid] = AttemptOutcome(
            tid,
            entry.spec.job_id,
            entry.attempt,
            OUTCOME_OK if ok else OUTCOME_ERROR,
            value=payload.get("value"),
            error=str(payload.get("error") or ""),
            duration_s=duration,
            worker_pid=int(payload.get("pid") or 0),
            telemetry=payload.get("telemetry"),
        )
        del self._tickets[tid]

    def _straggler_cutoff(self) -> float | None:
        if len(self._durations) < self._straggler_min_done:
            return None
        typical = _percentile(self._durations, self._straggler_pct)
        return max(
            self._straggler_floor_s, typical * self._straggler_factor
        )

    def _scan(self) -> None:
        now = time.monotonic()
        leases = self._leases()
        for tid, entry in list(self._tickets.items()):
            # 1. A finished worker? First result wins.
            settled = False
            for proc in self._live(entry):
                payload = self._read_result(proc)
                if payload is not None:
                    self._settle(tid, entry, proc, payload)
                    settled = True
                    break
            if settled:
                continue
            # 2. Expired deadline: the whole attempt is overdue.
            if entry.cutoff is not None and now >= entry.cutoff:
                for proc in self._live(entry):
                    self._retire(entry, proc, LEASE_CANCELLED, kill=True)
                self._ready[tid] = AttemptOutcome(
                    tid, entry.spec.job_id, entry.attempt, OUTCOME_TIMEOUT
                )
                del self._tickets[tid]
                continue
            # 3. Dead or lease-expired workers.
            for proc in self._live(entry):
                lease = (leases.get(proc.lease_key) or {}).get("value") or {}
                if lease.get("state") == LEASE_RUNNING:
                    proc.beaten = True
                    proc.beat = max(
                        proc.beat, float(lease.get("beat") or 0.0)
                    )
                if proc.popen.poll() is not None:
                    payload = self._read_result(proc)
                    if payload is not None:
                        # Result landed in the exit race; it counts.
                        self._settle(tid, entry, proc, payload)
                        break
                    metrics().count("executor.workers.lost")
                    self._retire(entry, proc, LEASE_LOST, kill=False)
                    continue
                threshold = (
                    self._ttl if proc.beaten else self._startup_grace_s
                )
                if now - proc.beat > threshold:
                    metrics().count("executor.leases.expired")
                    metrics().count("executor.workers.lost")
                    self._retire(entry, proc, LEASE_EXPIRED, kill=True)
            if tid not in self._tickets:
                continue  # settled inside the liveness sweep
            if not self._live(entry):
                exit_codes = sorted(
                    {
                        proc.popen.returncode
                        for proc in entry.procs
                        if proc.popen.returncode is not None
                    }
                )
                # A lease-expired proc was SIGKILLed by *us*, so its
                # exit code describes the fencing, not the failure —
                # the expiry is the story worth telling.
                if any(
                    proc.retired_state == LEASE_EXPIRED
                    for proc in entry.procs
                ):
                    detail = "lease expired"
                elif exit_codes:
                    detail = f"exit {exit_codes[0]}"
                else:
                    detail = "lease expired"
                self._ready[tid] = AttemptOutcome(
                    tid,
                    entry.spec.job_id,
                    entry.attempt,
                    OUTCOME_LOST,
                    error=(
                        f"worker process died ({detail}) before "
                        "returning a result"
                    ),
                )
                del self._tickets[tid]
                continue
            # 4. Straggler? Speculatively dispatch a twin.
            cutoff = self._straggler_cutoff()
            if (
                cutoff is not None
                and not entry.twin_dispatched
                and now - entry.started > cutoff
                and self._live_total() < self._jobs
            ):
                entry.twin_dispatched = True
                entry.procs.append(
                    self._spawn(entry.spec, entry.attempt, speculative=True)
                )
        metrics().gauge("executor.workers.live", self._live_total())

    # -- cancellation & teardown -------------------------------------------

    def cancel(self, ticket: str) -> bool:
        entry = self._tickets.pop(ticket, None)
        if entry is None:
            return False  # outcome already ready; collect it instead
        for proc in self._live(entry):
            self._retire(entry, proc, LEASE_CANCELLED, kill=True)
        return True

    def shutdown(self) -> None:
        for tid in list(self._tickets):
            self.cancel(tid)
        self._ready.clear()
        metrics().gauge("executor.workers.live", 0)
        self._store.close()
        if self._ephemeral:
            import shutil

            shutil.rmtree(self._dir, ignore_errors=True)

    def workers(self) -> tuple[WorkerInfo, ...]:
        leases = self._leases(max_age_s=0.0)
        infos: list[WorkerInfo] = []
        for entry in self._tickets.values():
            for proc in self._live(entry):
                lease = (
                    (leases.get(proc.lease_key) or {}).get("value") or {}
                )
                infos.append(
                    WorkerInfo(
                        worker_id=proc.worker_id,
                        pid=proc.popen.pid,
                        state=str(lease.get("state") or LEASE_DISPATCHED),
                        job_id=entry.spec.job_id,
                        attempt=entry.attempt,
                        last_beat=proc.beat,
                    )
                )
        return tuple(infos)
