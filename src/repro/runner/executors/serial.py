"""In-process execution backend: one attempt at a time, no pickling.

The serial backend is the debugging baseline — everything runs in the
calling process, so breakpoints, profilers, and non-picklable specs
all work.  The deadline watchdog is the one concession to resilience:
an attempt that outlives its wall-clock budget is abandoned on its
daemon thread (it cannot be killed, but it no longer blocks the
campaign) and surfaces as :class:`~.base.DeadlineExceeded`.
"""

from __future__ import annotations

import os
import threading
from typing import Any

from ..jobs import JobSpec, execute
from .base import (
    OUTCOME_ERROR,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    AttemptOutcome,
    DeadlineExceeded,
    ExecutionBackend,
    ExecutorFn,
    WorkerInfo,
    run_one_attempt,
)


def run_attempt_with_deadline(
    spec: JobSpec,
    executor_fn: ExecutorFn,
    deadline: float | None,
    attempt: int = 0,
) -> tuple[Any, float, int]:
    """One in-process attempt under a wall-clock watchdog.

    With no deadline this is :func:`~.base.run_one_attempt` unchanged
    (no thread).  Otherwise the attempt runs on a daemon thread the
    caller waits on for at most ``deadline`` seconds; on expiry the
    thread is abandoned and :class:`~.base.DeadlineExceeded` is
    raised.  A late result from an abandoned attempt is discarded,
    never resolved.
    """
    if deadline is None:
        return run_one_attempt(spec, executor_fn, attempt)
    box: list[tuple[str, Any]] = []

    def _target() -> None:
        try:
            box.append(("ok", run_one_attempt(spec, executor_fn, attempt)))
        except BaseException as error:  # noqa: BLE001 - relayed to caller
            box.append(("err", error))

    watchdog = threading.Thread(
        target=_target, name=f"attempt-{spec.job_id}", daemon=True
    )
    watchdog.start()
    watchdog.join(deadline)
    if watchdog.is_alive() or not box:
        raise DeadlineExceeded(deadline)
    status, payload = box[0]
    if status == "err":
        raise payload
    return payload


class SerialExecutor(ExecutionBackend):
    """Runs attempts synchronously in the calling process.

    ``submit`` executes the attempt before returning (there is nowhere
    to defer it to), so ``poll``/``collect`` simply hand the queued
    outcome back.  The scheduler's serial fast path calls
    :meth:`run_attempt` directly and keeps its own retry loop.
    """

    name = "serial"

    def __init__(self, *, executor_fn: ExecutorFn = execute):
        self._fn = executor_fn
        self._ready: dict[str, AttemptOutcome] = {}
        self._seq = 0

    def capacity(self) -> int:
        return 1

    def run_attempt(
        self, spec: JobSpec, attempt: int, deadline_s: float | None
    ) -> tuple[Any, float, int]:
        """One attempt now: ``(value, duration_s, pid)`` or raises."""
        return run_attempt_with_deadline(spec, self._fn, deadline_s, attempt)

    def submit(
        self, spec: JobSpec, attempt: int, deadline_s: float | None
    ) -> str:
        self._seq += 1
        ticket = f"s{self._seq}"
        try:
            value, duration, pid = self.run_attempt(spec, attempt, deadline_s)
        except DeadlineExceeded:
            outcome = AttemptOutcome(
                ticket, spec.job_id, attempt, OUTCOME_TIMEOUT,
                duration_s=float(deadline_s or 0.0),
            )
        except Exception as error:  # noqa: BLE001 - jobs may raise anything
            outcome = AttemptOutcome(
                ticket, spec.job_id, attempt, OUTCOME_ERROR,
                error=f"{type(error).__name__}: {error}",
            )
        else:
            outcome = AttemptOutcome(
                ticket, spec.job_id, attempt, OUTCOME_OK,
                value=value, duration_s=duration, worker_pid=pid,
            )
        self._ready[ticket] = outcome
        return ticket

    def poll(self, timeout: float | None) -> list[str]:
        return list(self._ready)

    def collect(self, ticket: str) -> AttemptOutcome:
        return self._ready.pop(ticket)

    def cancel(self, ticket: str) -> bool:
        # The attempt already ran inside submit(); its outcome exists
        # and must be collected, so cancellation can never win.
        return False

    def shutdown(self) -> None:
        self._ready.clear()

    def workers(self) -> tuple[WorkerInfo, ...]:
        return (
            WorkerInfo(worker_id="serial", pid=os.getpid(), state="live"),
        )
