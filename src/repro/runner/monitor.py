"""Progress monitoring hooks for campaign runs.

Mirrors the :mod:`repro.sim.monitor` idioms: a
:class:`~repro.sim.monitor.CounterMonitor` tallies lifecycle events and
a :class:`~repro.sim.monitor.TimeSeriesMonitor` records the number of
in-flight jobs over wall time (a step signal, like device power in the
simulator).  The monitor is an observer — pass it to
:func:`~repro.runner.queue.run_jobs` or
:func:`~repro.runner.campaign.run_campaign` — and can optionally echo a
one-line progress report per terminal event to a stream.
"""

from __future__ import annotations

import time
from typing import Callable, TextIO

from ..sim.monitor import CounterMonitor, TimeSeriesMonitor
from .events import (
    EVENT_CACHED,
    EVENT_FAILED,
    EVENT_FINISHED,
    EVENT_LOST,
    EVENT_RETRY,
    EVENT_SCHEDULED,
    EVENT_SKIPPED,
    EVENT_STARTED,
    EVENT_TIMEOUT,
    TERMINAL_EVENTS,
    JobEvent,
)

#: Terminal event kinds (the job will not be seen again).
_TERMINAL = TERMINAL_EVENTS


class ProgressMonitor:
    """Observes scheduler events; keeps counters and an activity trace.

    Parameters
    ----------
    stream:
        When given, one progress line per terminal event is written to
        it (e.g. ``[ 3/13] ok      fig2a (0.52s)``).
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        stream: TextIO | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._stream = stream
        self._clock = clock
        self._epoch: float | None = None
        self.counters = CounterMonitor()
        self.in_flight = TimeSeriesMonitor("in-flight jobs", linear=False)
        self._active = 0
        self.total = 0

    def _now(self) -> float:
        if self._epoch is None:
            self._epoch = self._clock()
        return self._clock() - self._epoch

    def __call__(self, event: JobEvent) -> None:
        """Consume one :class:`~repro.runner.queue.JobEvent`."""
        now = self._now()
        self.counters.increment(event.kind)
        if event.total:
            self.total = event.total
        if event.kind == EVENT_STARTED:
            self._active += 1
            self.in_flight.record(now, float(self._active))
        elif event.kind in (
            EVENT_FINISHED, EVENT_FAILED, EVENT_RETRY, EVENT_LOST
        ):
            # A retry or lost event closes one attempt; the next
            # attempt emits its own started event, so the job is not
            # in flight between.
            self._active = max(0, self._active - 1)
            self.in_flight.record(now, float(self._active))
        if self._stream is not None and event.kind in (
            EVENT_RETRY, EVENT_TIMEOUT, EVENT_LOST
        ):
            # Retries, expired deadlines, and lost workers are worth a
            # line of their own (with the attempt number) — a silently
            # re-running job looks like a hang.  A timeout event is
            # always followed by a retry or a terminal failure, so it
            # carries no in-flight accounting of its own; a requeued
            # event follows lost and likewise carries none.
            line = (
                f"[{self.done:{self._width()}d}/{self.total}] "
                f"{event.kind:7s} {event.job_id} (attempt {event.attempt})"
            )
            if event.error:
                line += f" — {event.error}"
            print(line, file=self._stream)
        if self._stream is not None and event.kind in _TERMINAL:
            done = self.done
            status = {
                EVENT_FINISHED: "ok",
                EVENT_CACHED: "cached",
                EVENT_FAILED: "FAILED",
                EVENT_SKIPPED: "skipped",
            }[event.kind]
            line = (
                f"[{done:{self._width()}d}/{self.total}] {status:7s}"
                f" {event.job_id} ({event.duration_s:.2f}s)"
            )
            if event.error:
                line += f" — {event.error}"
            print(line, file=self._stream)

    def _width(self) -> int:
        """Counter field width: wide enough for ``total``, min 2.

        Derived from the batch size so a 1000-job campaign's progress
        lines stay column-aligned instead of overflowing a hard-coded
        2-digit field.
        """
        return max(2, len(str(self.total)))

    # -- statistics --------------------------------------------------------

    @property
    def done(self) -> int:
        """Jobs that reached a terminal state."""
        return sum(self.counters.count(kind) for kind in _TERMINAL)

    @property
    def elapsed_s(self) -> float:
        """Wall time since the first observed event."""
        if self._epoch is None:
            return 0.0
        return self._clock() - self._epoch

    def mean_concurrency(self) -> float:
        """Time-averaged number of in-flight jobs (0 before any start)."""
        if self.in_flight.duration == 0:
            return 0.0
        return self.in_flight.time_average()

    def summary(self) -> str:
        """One-line rollup, e.g. ``13 jobs: 9 ok, 4 cached in 2.1s``."""
        counts = self.counters.as_dict()
        parts = []
        for kind, label in (
            (EVENT_FINISHED, "ok"),
            (EVENT_CACHED, "cached"),
            (EVENT_FAILED, "failed"),
            (EVENT_SKIPPED, "skipped"),
        ):
            if counts.get(kind):
                parts.append(f"{counts[kind]} {label}")
        # Fall back to the terminal-event count when no scheduled
        # events were observed (e.g. the monitor was attached late, or
        # a cached-only replay fed it terminal events directly) — a
        # re-run that resolves N jobs from cache is still N jobs, not 0.
        total = max(counts.get(EVENT_SCHEDULED, 0), self.done)
        body = ", ".join(parts) if parts else "nothing to do"
        return f"{total} jobs: {body} in {self.elapsed_s:.1f}s"
