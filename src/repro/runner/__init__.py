"""Campaign orchestration engine: parallel, cached, resumable runs.

The runner executes batches of experiments and parameter grids across a
process pool with dependency ordering, retry-on-failure,
content-addressed memoization, and a persistent JSONL result store:

* :mod:`~repro.runner.jobs` — :class:`JobSpec`/:class:`JobResult` with
  deterministic content-hash keys,
* :mod:`~repro.runner.events` — the versioned event protocol
  (:class:`Event`, :class:`EventBus`) every layer publishes on,
* :mod:`~repro.runner.queue` — the dependency-aware scheduler
  (:func:`run_jobs`, :func:`parallel_map`),
* :mod:`~repro.runner.executors` — pluggable execution backends
  (serial / process pool / lease-tracked worker fleet),
* :mod:`~repro.runner.cache` — content-addressed memoization with
  provenance-stamp invalidation,
* :mod:`~repro.runner.store` — the persistent, resumable result store,
* :mod:`~repro.runner.backends` — pluggable store persistence
  (append-only JSONL, indexed WAL-mode SQLite),
* :mod:`~repro.runner.provenance` — version + config-hash stamps that
  detect results produced by older model code,
* :mod:`~repro.runner.campaign` — the declarative high-level API,
* :mod:`~repro.runner.sharding` — million-point sweeps as sharded,
  resumable campaigns over the batch-evaluation fast paths,
* :mod:`~repro.runner.monitor` — progress hooks in the
  :mod:`repro.sim.monitor` idiom.

Quickstart::

    from repro.runner import registry_campaign, run_campaign

    result = run_campaign(
        registry_campaign(),          # every registered experiment
        jobs=4,                       # across four worker processes
        store_path="results.jsonl",   # re-runs resolve from cache
    )
    print(result.summary())
"""

from .backends import (
    BACKEND_ENV_VAR,
    BACKENDS,
    JsonlBackend,
    SqliteBackend,
    StoreBackend,
)
from .cache import ResultCache
from .campaign import (
    Campaign,
    CampaignResult,
    registry_campaign,
    run_campaign,
)
from .events import (
    EVENT_LOST,
    EVENT_REQUEUED,
    EVENT_SCHEMA,
    TERMINAL_EVENTS,
    Event,
    EventBus,
    event_from_json,
    event_to_json,
)
from .executors import (
    EXECUTOR_ENV_VAR,
    EXECUTOR_KINDS,
    ExecutionBackend,
    FleetExecutor,
    PoolExecutor,
    SerialExecutor,
    make_executor,
)
from .jobs import (
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    JobResult,
    JobSpec,
    content_key,
)
from .codec import (
    CODEC_COLUMNAR,
    CODEC_ENV_VAR,
    CODEC_JSON,
    STORAGE_FORMAT,
)
from .monitor import ProgressMonitor
from .provenance import config_content_hash, provenance_stamp
from .queue import JobEvent, parallel_map, run_jobs, topological_order
from .sharding import (
    SweepColumns,
    collect_arrays,
    collect_points,
    grid_descriptor,
    iter_points,
    lookup_point,
    run_sharded_sweep,
    shard_grid,
    sharded_sweep_campaign,
)
from .store import ResultStore, migrate_store

__all__ = [
    "BACKENDS",
    "BACKEND_ENV_VAR",
    "CODEC_COLUMNAR",
    "CODEC_ENV_VAR",
    "CODEC_JSON",
    "Campaign",
    "CampaignResult",
    "EVENT_LOST",
    "EVENT_REQUEUED",
    "EVENT_SCHEMA",
    "EXECUTOR_ENV_VAR",
    "EXECUTOR_KINDS",
    "Event",
    "EventBus",
    "ExecutionBackend",
    "FleetExecutor",
    "JobEvent",
    "JobResult",
    "JobSpec",
    "JsonlBackend",
    "PoolExecutor",
    "ProgressMonitor",
    "ResultCache",
    "ResultStore",
    "STATUS_CACHED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_SKIPPED",
    "STORAGE_FORMAT",
    "SerialExecutor",
    "SqliteBackend",
    "StoreBackend",
    "SweepColumns",
    "TERMINAL_EVENTS",
    "collect_arrays",
    "collect_points",
    "config_content_hash",
    "content_key",
    "event_from_json",
    "event_to_json",
    "grid_descriptor",
    "iter_points",
    "lookup_point",
    "make_executor",
    "migrate_store",
    "parallel_map",
    "provenance_stamp",
    "registry_campaign",
    "run_campaign",
    "run_jobs",
    "run_sharded_sweep",
    "shard_grid",
    "sharded_sweep_campaign",
    "topological_order",
]
