"""Typed, versioned event protocol for the campaign pipeline.

This is the protocol the ROADMAP names as the refactor target: one
stream of structured events that the queue emits and any number of
subscribers — progress monitor, telemetry capture, a future
HTTP/WebSocket service — consume, instead of each layer growing its
own ad-hoc callback shape.

Two dataclasses:

* :class:`JobEvent` is the minimal lifecycle notification the
  scheduler has always emitted (kind, job id, attempt, duration,
  error, totals).  It remains the observer-facing compatibility type —
  anything that accepted a ``JobEvent`` keeps working.
* :class:`Event` extends it with the envelope a *protocol* needs:
  schema id (:data:`EVENT_SCHEMA`), per-run monotonic sequence number,
  wall-clock and monotonic timestamps, emitting pid, and the run id —
  enough to order, correlate, and replay a stream across processes and
  files.  :func:`event_to_json` / :func:`event_from_json` round-trip
  it bit-exactly (canonical sorted-key compact JSON).

:class:`EventBus` owns the stamping: ``publish()`` builds the
``Event``, assigns the next sequence number, and fans it out to every
subscriber.  Subscribers are plain callables; a subscriber raising
does not stop delivery to the others (the error is rethrown after
delivery completes, so bugs stay loud without corrupting the stream).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from typing import Any, Callable, Iterable, Mapping

#: Schema identifier stamped into every :class:`Event`.
EVENT_SCHEMA = "repro.event/1"

#: Event kinds emitted to observers, in lifecycle order.
EVENT_SCHEDULED = "scheduled"
EVENT_STARTED = "started"
EVENT_TIMEOUT = "timeout"
EVENT_RETRY = "retry"
#: The attempt's worker vanished (crash, broken pool, expired lease)
#: before producing a result.
EVENT_LOST = "lost"
#: A lost attempt's job went back in the queue (follows ``lost``).
EVENT_REQUEUED = "requeued"
EVENT_FINISHED = "finished"
EVENT_FAILED = "failed"
EVENT_SKIPPED = "skipped"
EVENT_CACHED = "cached"

#: Terminal event kinds (the job will not be seen again).
TERMINAL_EVENTS = (EVENT_FINISHED, EVENT_FAILED, EVENT_SKIPPED, EVENT_CACHED)


@dataclass(frozen=True)
class JobEvent:
    """One scheduler lifecycle notification.

    Attributes
    ----------
    kind:
        One of the ``EVENT_*`` constants.
    job_id:
        The affected job.
    attempt:
        1-based attempt number for started/timeout/retry/finished/
        failed events.
    duration_s:
        Wall time of the attempt, for finished/failed events (the
        exceeded deadline, for timeout events).
    error:
        Error text for timeout/retry/failed/skipped events.
    total:
        Total number of jobs in the batch (constant per run).
    done:
        Jobs resolved so far, including this event if it is terminal.
    """

    kind: str
    job_id: str
    attempt: int = 0
    duration_s: float = 0.0
    error: str | None = None
    total: int = 0
    done: int = 0


@dataclass(frozen=True)
class Event(JobEvent):
    """A :class:`JobEvent` wrapped in the versioned protocol envelope.

    Every field the base class defines keeps its meaning; the envelope
    adds stream identity:

    Attributes
    ----------
    schema:
        Protocol version tag (:data:`EVENT_SCHEMA`).
    seq:
        1-based monotonic sequence number within the emitting run.
    ts:
        Wall-clock emission time (``time.time()``), for humans and
        cross-run correlation.
    mono:
        Monotonic emission time (``time.monotonic()``), for intra-run
        ordering and durations unaffected by clock steps.
    pid:
        Pid of the emitting process (the scheduler parent; worker pids
        travel on results, not events).
    run_id:
        Identifier of the campaign/sweep run this event belongs to.
    """

    schema: str = EVENT_SCHEMA
    seq: int = 0
    ts: float = 0.0
    mono: float = 0.0
    pid: int = 0
    run_id: str = ""


def event_to_json(event: JobEvent) -> str:
    """Canonical JSON line for one event (sorted keys, compact).

    Canonical form makes the round-trip bit-exact:
    ``event_to_json(event_from_json(s)) == s`` for any ``s`` this
    function produced, and ``event_from_json(event_to_json(e)) == e``.
    """
    return json.dumps(asdict(event), sort_keys=True, separators=(",", ":"))


def event_from_json(line: str) -> Event:
    """Rebuild an :class:`Event` from its JSON form.

    A plain :class:`JobEvent` rendering (no ``schema`` field) loads
    too — the envelope fields take their defaults.  An unknown schema
    tag raises :class:`ValueError` rather than mis-parsing.
    """
    data = json.loads(line)
    if not isinstance(data, Mapping):
        raise ValueError("event JSON must be an object")
    schema = data.get("schema", EVENT_SCHEMA)
    if schema != EVENT_SCHEMA:
        raise ValueError(f"unsupported event schema {schema!r}")
    known = {
        field: data[field]
        for field in (
            "kind", "job_id", "attempt", "duration_s", "error",
            "total", "done", "schema", "seq", "ts", "mono", "pid",
            "run_id",
        )
        if field in data
    }
    return Event(**known)


#: Anything that consumes events — monitors, captures, future services.
Subscriber = Callable[[JobEvent], None]


class EventBus:
    """Fans one event stream out to N subscribers, stamping envelopes.

    The bus is the single emission point for a run: ``publish()``
    assigns the next sequence number, stamps timestamps/pid/run id,
    and delivers the frozen :class:`Event` to every subscriber in
    subscription order.
    """

    def __init__(
        self,
        run_id: str = "",
        subscribers: Iterable[Subscriber] = (),
    ) -> None:
        self.run_id = run_id
        self._subscribers: list[Subscriber] = list(subscribers)
        self._seq = 0

    def subscribe(self, subscriber: Subscriber) -> None:
        """Add one subscriber (receives every subsequent event)."""
        self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber: Subscriber) -> bool:
        """Remove one subscriber; returns whether it was subscribed.

        Safe to call from inside a subscriber callback during fanout:
        delivery of the in-flight event still reaches every subscriber
        that was registered when ``publish()`` snapshotted the list
        (including the one being removed), and no later subscriber is
        skipped or delivered twice.  The removed subscriber receives no
        subsequent events.
        """
        try:
            self._subscribers.remove(subscriber)
        except ValueError:
            return False
        return True

    @property
    def subscribers(self) -> tuple[Subscriber, ...]:
        return tuple(self._subscribers)

    @property
    def seq(self) -> int:
        """Sequence number of the most recently published event."""
        return self._seq

    def publish(self, kind: str, job_id: str, **fields: Any) -> Event:
        """Build, stamp, and deliver one event; returns it.

        Delivery reaches every subscriber even when one raises; the
        first error is re-raised afterwards so subscriber bugs stay
        visible without desynchronising later subscribers' streams.
        """
        self._seq += 1
        event = Event(
            kind,
            job_id,
            schema=EVENT_SCHEMA,
            seq=self._seq,
            ts=time.time(),
            mono=time.monotonic(),
            pid=os.getpid(),
            run_id=self.run_id,
            **fields,
        )
        first_error: BaseException | None = None
        # Snapshot: a subscriber unsubscribing (itself or another)
        # mid-fanout must not shift the iteration and skip or
        # double-deliver to later subscribers.
        for subscriber in tuple(self._subscribers):
            try:
                subscriber(event)
            except BaseException as error:  # noqa: BLE001 - keep delivering
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        return event
