"""On-media formatting: ECC sizing, sector/subsector layout, device layout.

This package implements the storage-format substrate behind §III.B of the
paper: how user data is striped over ``K`` probes, how much error-correction
and synchronisation overhead each sector pays, and what fraction of the raw
medium therefore stores user bits (Equations (2)-(4)).
"""

from .ecc import ECCScheme, FractionalECC, ReedSolomonECC, NoECC
from .sector import SectorFormat, SectorLayout
from .layout import DeviceLayout
from .wear_leveling import (
    DirectPlacement,
    LeastWornPlacement,
    PlacementPolicy,
    RotatingPlacement,
    SectorWearMap,
    WearSimulationResult,
    simulate_wear,
    zipf_write_workload,
)

__all__ = [
    "ECCScheme",
    "FractionalECC",
    "ReedSolomonECC",
    "NoECC",
    "SectorFormat",
    "SectorLayout",
    "DeviceLayout",
    "SectorWearMap",
    "PlacementPolicy",
    "DirectPlacement",
    "RotatingPlacement",
    "LeastWornPlacement",
    "WearSimulationResult",
    "simulate_wear",
    "zipf_write_workload",
]
