"""Sector and subsector layout: Equations (2)-(4) of the paper.

A sector holding ``Su`` user bits is striped across ``K`` active probes.
Each probe stores one *subsector* of

    s = ceil((Su + S_ECC) / K) + sync_bits            (Equation 2)

bits, where the trailing synchronisation bits keep the read-channel clock
running between subsectors (§III.B.2; the paper assumes 3 bits ~ a 30 µs
processing window at 100 kbps per probe).  The effective sector size on the
medium is

    S = K * s                                         (Equation 3)

and the capacity utilisation is

    u(Su) = Su / S.                                   (Equation 4)

Because of the two ceilings, ``u`` is a saw-tooth in ``Su``: it climbs while
the last subsector fills and drops one bit-per-probe each time the striping
spills into a new column.  :class:`SectorLayout` exposes both the exact
integer math and the smooth envelope used for closed-form reasoning, plus
the exact *inverse* (minimal ``Su`` reaching a utilisation target) on which
the design-space exploration of §IV.C rests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError, InfeasibleDesignError
from .ecc import ECCScheme, FractionalECC


@dataclass(frozen=True)
class SectorFormat:
    """The fully resolved layout of one formatted sector.

    Produced by :meth:`SectorLayout.format_sector`; all sizes in bits.
    """

    user_bits: int
    ecc_bits: int
    subsector_bits: int
    sector_bits: int
    stripe_width: int
    sync_bits_per_subsector: int

    @property
    def payload_bits(self) -> int:
        """User + ECC bits (what striping distributes over the probes)."""
        return self.user_bits + self.ecc_bits

    @property
    def sync_bits_total(self) -> int:
        """Synchronisation bits across the whole sector."""
        return self.stripe_width * self.sync_bits_per_subsector

    @property
    def padding_bits(self) -> int:
        """Bits lost to rounding the stripe up to whole subsector columns."""
        return self.sector_bits - self.payload_bits - self.sync_bits_total

    @property
    def utilisation(self) -> float:
        """Capacity utilisation ``u = Su / S`` (Equation 4)."""
        return self.user_bits / self.sector_bits


class SectorLayout:
    """Striping calculator for a probe-storage device.

    Parameters
    ----------
    stripe_width:
        Number of active probes ``K`` a sector is striped across.
    sync_bits_per_subsector:
        Synchronisation bits after each subsector (paper: 3).
    ecc:
        ECC sizing scheme; defaults to the paper's one-eighth
        :class:`~repro.formatting.ecc.FractionalECC`.
    """

    def __init__(
        self,
        stripe_width: int = 1024,
        sync_bits_per_subsector: int = 3,
        ecc: ECCScheme | None = None,
    ):
        if stripe_width <= 0:
            raise ConfigurationError("stripe_width must be > 0")
        if sync_bits_per_subsector < 0:
            raise ConfigurationError("sync_bits_per_subsector must be >= 0")
        self.stripe_width = stripe_width
        self.sync_bits_per_subsector = sync_bits_per_subsector
        self.ecc = ecc if ecc is not None else FractionalECC()

    # -- forward direction: Equations (2)-(4) -------------------------------

    def subsector_bits(self, user_bits: int) -> int:
        """Subsector size ``s`` for a sector of ``user_bits`` (Equation 2)."""
        if user_bits <= 0:
            raise ConfigurationError("user_bits must be > 0")
        payload = user_bits + self.ecc.ecc_bits(user_bits)
        return math.ceil(payload / self.stripe_width) + self.sync_bits_per_subsector

    def sector_bits(self, user_bits: int) -> int:
        """Effective stored sector size ``S = K * s`` (Equation 3)."""
        return self.stripe_width * self.subsector_bits(user_bits)

    def utilisation(self, user_bits: int) -> float:
        """Capacity utilisation ``u(Su) = Su / S`` (Equation 4)."""
        return user_bits / self.sector_bits(user_bits)

    def format_sector(self, user_bits: int) -> SectorFormat:
        """Resolve the complete layout for a sector of ``user_bits``."""
        ecc_bits = self.ecc.ecc_bits(user_bits)
        subsector = self.subsector_bits(user_bits)
        return SectorFormat(
            user_bits=user_bits,
            ecc_bits=ecc_bits,
            subsector_bits=subsector,
            sector_bits=self.stripe_width * subsector,
            stripe_width=self.stripe_width,
            sync_bits_per_subsector=self.sync_bits_per_subsector,
        )

    # -- envelope (smooth, ceil-free) ---------------------------------------

    def utilisation_envelope(self, user_bits: float) -> float:
        """Smooth upper-envelope approximation of ``u(Su)``.

        Drops both ceilings: ``u ~= Su / (Su * (1 + e) + c * K)`` with
        ``e`` the ECC overhead ratio and ``c`` the sync bits per subsector.
        Exact at the saw-tooth peaks when ``(Su + S_ECC)`` is a multiple of
        ``K``; an upper bound elsewhere.
        """
        if user_bits <= 0:
            raise ConfigurationError("user_bits must be > 0")
        payload = user_bits * (1.0 + self.ecc.overhead_ratio())
        return user_bits / (
            payload + self.sync_bits_per_subsector * self.stripe_width
        )

    @property
    def utilisation_supremum(self) -> float:
        """Least upper bound of ``u(Su)`` as sectors grow without bound.

        Equals ``1 / (1 + e)`` — e.g. 8/9 ~ 88.9% for one-eighth ECC.  No
        finite sector reaches it, but every target strictly below it is
        attainable.
        """
        return 1.0 / (1.0 + self.ecc.overhead_ratio())

    def best_user_bits_at_most(self, max_user_bits: int) -> int:
        """Sector size ``Su <= max_user_bits`` with the best utilisation.

        The saw-tooth means the largest admissible ``Su`` is not always
        the best one; the winner is the nearest peak (a payload size that
        exactly fills its stripe columns) at or below the cap.  Peaks
        grow essentially monotonically, so only a small window below the
        cap needs scanning.
        """
        if max_user_bits <= 0:
            raise ConfigurationError("max_user_bits must be > 0")
        candidates = {max_user_bits}
        payload_cap = max_user_bits + self.ecc.ecc_bits(max_user_bits)
        top_column = payload_cap // self.stripe_width
        for columns in range(max(1, top_column - 64), top_column + 1):
            su = self._max_user_bits_with_payload(
                columns * self.stripe_width
            )
            if 0 < su <= max_user_bits:
                candidates.add(su)
        return max(candidates, key=self.utilisation)

    # -- inverse direction: minimal Su for a utilisation target -------------

    def min_user_bits_for_utilisation(self, target: float) -> int:
        """Smallest ``Su`` (bits) whose utilisation reaches ``target``.

        This is the inverse function of Equation (4) used in §IV.C: the
        capacity constraint ``C`` of a design goal translates into a minimal
        sector size, hence (via ``B >= Su``) a minimal streaming buffer.

        The saw-tooth is handled exactly: we iterate over subsector sizes
        ``s`` in increasing order; within a fixed ``s`` the utilisation
        ``Su / (K * s)`` grows linearly with ``Su`` up to the largest
        payload that still fits, so the first ``s`` admitting the target
        yields the global minimiser.

        Raises
        ------
        InfeasibleDesignError
            If ``target`` is not strictly below :attr:`utilisation_supremum`
            (or not reachable by any finite sector).
        """
        if not 0 < target <= 1:
            raise ConfigurationError(f"target must lie in (0, 1], got {target!r}")
        supremum = self.utilisation_supremum
        if target >= supremum:
            raise InfeasibleDesignError(
                f"utilisation target {target:.4f} is not below the formatting "
                f"supremum {supremum:.4f} (ECC overhead "
                f"{self.ecc.overhead_ratio():.4f})",
                constraint="capacity",
            )

        c = self.sync_bits_per_subsector
        k = self.stripe_width
        # Smooth-envelope estimate of the required subsector size; the exact
        # answer can only be >= this (ceilings never help), so start there.
        denominator = 1.0 - target * (1.0 + self.ecc.overhead_ratio())
        if c == 0:
            s_start = 1
        else:
            s_start = max(1 + c, math.floor(c / denominator))
        # The envelope also bounds how far we may have to look: utilisation
        # within a subsector class s is at most (1 - c/s)/(1 + e) + slack of
        # one payload column, so a proportional safety margin suffices.
        s_limit = max(s_start * 4 + 64, 1024)

        for s in range(max(s_start, c + 1), s_limit + 1):
            payload_capacity = k * (s - c)
            su_max = self._max_user_bits_with_payload(payload_capacity)
            if su_max <= 0:
                continue
            su_needed = math.ceil(target * k * s)
            if su_needed <= su_max:
                return su_needed
        raise InfeasibleDesignError(  # pragma: no cover - defensive
            f"no subsector size up to {s_limit} reaches utilisation "
            f"{target:.4f}; supremum is {supremum:.4f}",
            constraint="capacity",
        )

    def _max_user_bits_with_payload(self, payload_capacity: int) -> int:
        """Largest ``Su`` with ``Su + ecc_bits(Su) <= payload_capacity``."""
        if payload_capacity <= 0:
            return 0
        ratio = self.ecc.overhead_ratio()
        guess = int(payload_capacity / (1.0 + ratio)) + 2
        su = guess
        while su > 0 and su + self.ecc.ecc_bits(su) > payload_capacity:
            su -= 1
        # Guard against an under-estimate of the guess (non-linear schemes).
        while (su + 1) + self.ecc.ecc_bits(su + 1) <= payload_capacity:
            su += 1
        return su
