"""Sector and subsector layout: Equations (2)-(4) of the paper.

A sector holding ``Su`` user bits is striped across ``K`` active probes.
Each probe stores one *subsector* of

    s = ceil((Su + S_ECC) / K) + sync_bits            (Equation 2)

bits, where the trailing synchronisation bits keep the read-channel clock
running between subsectors (§III.B.2; the paper assumes 3 bits ~ a 30 µs
processing window at 100 kbps per probe).  The effective sector size on the
medium is

    S = K * s                                         (Equation 3)

and the capacity utilisation is

    u(Su) = Su / S.                                   (Equation 4)

Because of the two ceilings, ``u`` is a saw-tooth in ``Su``: it climbs while
the last subsector fills and drops one bit-per-probe each time the striping
spills into a new column.  :class:`SectorLayout` exposes both the exact
integer math and the smooth envelope used for closed-form reasoning, plus
the exact *inverse* (minimal ``Su`` reaching a utilisation target) on which
the design-space exploration of §IV.C rests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, InfeasibleDesignError
from ..kernels import batch_chunk_rows, dispatch
from .ecc import ECCScheme, FractionalECC, NoECC


@dataclass(frozen=True)
class SectorFormat:
    """The fully resolved layout of one formatted sector.

    Produced by :meth:`SectorLayout.format_sector`; all sizes in bits.
    """

    user_bits: int
    ecc_bits: int
    subsector_bits: int
    sector_bits: int
    stripe_width: int
    sync_bits_per_subsector: int

    @property
    def payload_bits(self) -> int:
        """User + ECC bits (what striping distributes over the probes)."""
        return self.user_bits + self.ecc_bits

    @property
    def sync_bits_total(self) -> int:
        """Synchronisation bits across the whole sector."""
        return self.stripe_width * self.sync_bits_per_subsector

    @property
    def padding_bits(self) -> int:
        """Bits lost to rounding the stripe up to whole subsector columns."""
        return self.sector_bits - self.payload_bits - self.sync_bits_total

    @property
    def utilisation(self) -> float:
        """Capacity utilisation ``u = Su / S`` (Equation 4)."""
        return self.user_bits / self.sector_bits


class SectorLayout:
    """Striping calculator for a probe-storage device.

    Parameters
    ----------
    stripe_width:
        Number of active probes ``K`` a sector is striped across.
    sync_bits_per_subsector:
        Synchronisation bits after each subsector (paper: 3).
    ecc:
        ECC sizing scheme; defaults to the paper's one-eighth
        :class:`~repro.formatting.ecc.FractionalECC`.
    """

    def __init__(
        self,
        stripe_width: int = 1024,
        sync_bits_per_subsector: int = 3,
        ecc: ECCScheme | None = None,
    ):
        if stripe_width <= 0:
            raise ConfigurationError("stripe_width must be > 0")
        if sync_bits_per_subsector < 0:
            raise ConfigurationError("sync_bits_per_subsector must be >= 0")
        self.stripe_width = stripe_width
        self.sync_bits_per_subsector = sync_bits_per_subsector
        self.ecc = ecc if ecc is not None else FractionalECC()

    # -- forward direction: Equations (2)-(4) -------------------------------

    def subsector_bits(self, user_bits: int) -> int:
        """Subsector size ``s`` for a sector of ``user_bits`` (Equation 2)."""
        if user_bits <= 0:
            raise ConfigurationError("user_bits must be > 0")
        payload = user_bits + self.ecc.ecc_bits(user_bits)
        return math.ceil(payload / self.stripe_width) + self.sync_bits_per_subsector

    def sector_bits(self, user_bits: int) -> int:
        """Effective stored sector size ``S = K * s`` (Equation 3)."""
        return self.stripe_width * self.subsector_bits(user_bits)

    def utilisation(self, user_bits: int) -> float:
        """Capacity utilisation ``u(Su) = Su / S`` (Equation 4)."""
        return user_bits / self.sector_bits(user_bits)

    def ecc_bits_batch(self, user_bits: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`ECCScheme.ecc_bits` over an integer array.

        Exact integer arithmetic for the built-in schemes (the paper's
        fractional model and the no-ECC baseline); arbitrary schemes
        fall back to a per-element loop so the batch path never changes
        an answer, only its speed.
        """
        user_bits = np.asarray(user_bits, dtype=np.int64)
        if isinstance(self.ecc, FractionalECC):
            num, den = self.ecc.numerator, self.ecc.denominator
            return -((-user_bits * num) // den)  # ceil for positive inputs
        if isinstance(self.ecc, NoECC):
            return np.zeros_like(user_bits)
        flat = np.array(
            [self.ecc.ecc_bits(int(u)) for u in user_bits.ravel()],
            dtype=np.int64,
        )
        return flat.reshape(user_bits.shape)

    def sector_bits_batch(self, user_bits: np.ndarray) -> np.ndarray:
        """Vectorised Equations (2)-(3): stored sector sizes for a grid."""
        user_bits = np.asarray(user_bits, dtype=np.int64)
        if user_bits.size and int(user_bits.min()) <= 0:
            raise ConfigurationError("user_bits must be > 0")
        payload = user_bits + self.ecc_bits_batch(user_bits)
        subsector = -((-payload) // self.stripe_width) + self.sync_bits_per_subsector
        return self.stripe_width * subsector

    def format_sector(self, user_bits: int) -> SectorFormat:
        """Resolve the complete layout for a sector of ``user_bits``."""
        ecc_bits = self.ecc.ecc_bits(user_bits)
        subsector = self.subsector_bits(user_bits)
        return SectorFormat(
            user_bits=user_bits,
            ecc_bits=ecc_bits,
            subsector_bits=subsector,
            sector_bits=self.stripe_width * subsector,
            stripe_width=self.stripe_width,
            sync_bits_per_subsector=self.sync_bits_per_subsector,
        )

    # -- envelope (smooth, ceil-free) ---------------------------------------

    def utilisation_envelope(self, user_bits: float) -> float:
        """Smooth upper-envelope approximation of ``u(Su)``.

        Drops both ceilings: ``u ~= Su / (Su * (1 + e) + c * K)`` with
        ``e`` the ECC overhead ratio and ``c`` the sync bits per subsector.
        Exact at the saw-tooth peaks when ``(Su + S_ECC)`` is a multiple of
        ``K``; an upper bound elsewhere.
        """
        if user_bits <= 0:
            raise ConfigurationError("user_bits must be > 0")
        payload = user_bits * (1.0 + self.ecc.overhead_ratio())
        return user_bits / (
            payload + self.sync_bits_per_subsector * self.stripe_width
        )

    @property
    def utilisation_supremum(self) -> float:
        """Least upper bound of ``u(Su)`` as sectors grow without bound.

        Equals ``1 / (1 + e)`` — e.g. 8/9 ~ 88.9% for one-eighth ECC.  No
        finite sector reaches it, but every target strictly below it is
        attainable.
        """
        return 1.0 / (1.0 + self.ecc.overhead_ratio())

    def best_user_bits_at_most(self, max_user_bits: int) -> int:
        """Sector size ``Su <= max_user_bits`` with the best utilisation.

        The saw-tooth means the largest admissible ``Su`` is not always
        the best one; the winner is the nearest peak (a payload size that
        exactly fills its stripe columns) at or below the cap.  Peaks
        grow essentially monotonically, so only a small window below the
        cap needs scanning.
        """
        if max_user_bits <= 0:
            raise ConfigurationError("max_user_bits must be > 0")
        candidates = {max_user_bits}
        payload_cap = max_user_bits + self.ecc.ecc_bits(max_user_bits)
        top_column = payload_cap // self.stripe_width
        for columns in range(max(1, top_column - 64), top_column + 1):
            su = self._max_user_bits_with_payload(
                columns * self.stripe_width
            )
            if 0 < su <= max_user_bits:
                candidates.add(su)
        return max(candidates, key=self.utilisation)

    def best_user_bits_at_most_batch(self, max_user_bits) -> np.ndarray:
        """Vectorised :meth:`best_user_bits_at_most` over a grid of caps.

        Evaluates the same candidate set as the scalar method — the cap
        itself plus the saw-tooth peaks of the 64 stripe columns below
        it — for every grid point at once.  The built-in ECC schemes
        (fractional and none) dispatch to the ``sawtooth_best_user_bits``
        kernel; arbitrary schemes keep the chunked in-class path, whose
        chunk size now adapts to the candidate-matrix row width instead
        of the old fixed 16384 rows.
        """
        caps = np.asarray(max_user_bits, dtype=np.int64)
        flat = caps.ravel()
        if flat.size and int(flat.min()) <= 0:
            raise ConfigurationError("max_user_bits must be > 0")
        fractional = self._fractional_ecc_terms()
        if fractional is not None:
            num, den = fractional
            out = dispatch(
                "sawtooth_best_user_bits",
                flat,
                self.stripe_width,
                self.sync_bits_per_subsector,
                num,
                den,
            )
            return np.asarray(out, dtype=np.int64).reshape(caps.shape)
        out = np.empty(flat.shape, dtype=np.int64)
        chunk = batch_chunk_rows(row_width=66)
        for start in range(0, flat.size, chunk):
            out[start : start + chunk] = self._best_user_bits_chunk(
                flat[start : start + chunk]
            )
        return out.reshape(caps.shape)

    def _fractional_ecc_terms(self) -> tuple[int, int] | None:
        """``(num, den)`` when the ECC scheme is kernel-eligible.

        The saw-tooth kernel models ECC as the exact integer ceiling
        ``ceil(Su * num / den)``; that covers the paper's fractional
        scheme and the no-ECC baseline (``0/1``).  Anything else —
        including subclasses that might override the sizing — returns
        ``None`` and stays on the in-class batch path.
        """
        if type(self.ecc) is FractionalECC:
            return self.ecc.numerator, self.ecc.denominator
        if type(self.ecc) is NoECC:
            return 0, 1
        return None

    def _best_user_bits_chunk(self, caps: np.ndarray) -> np.ndarray:
        """One bounded chunk of :meth:`best_user_bits_at_most_batch`."""
        payload_cap = caps + self.ecc_bits_batch(caps)
        top_column = payload_cap // self.stripe_width
        offsets = np.arange(0, 65, dtype=np.int64)
        columns = np.maximum(top_column[:, None] - offsets[None, :], 1)
        su = self._max_user_bits_with_payload_batch(
            columns * self.stripe_width
        )
        valid = (su > 0) & (su <= caps[:, None])
        # The cap itself is always a candidate; invalid peaks are kept
        # in the matrix (as a harmless placeholder) and excluded from
        # the argmax by forcing their utilisation below any real one.
        candidates = np.concatenate(
            [caps[:, None], np.where(valid, su, 1)], axis=1
        )
        utilisation = candidates / self.sector_bits_batch(candidates)
        utilisation[:, 1:][~valid] = -1.0
        best = np.argmax(utilisation, axis=1)
        return candidates[np.arange(caps.size), best]

    def _max_user_bits_with_payload_batch(self, payload_capacity) -> np.ndarray:
        """Vectorised :meth:`_max_user_bits_with_payload` (int64 grids).

        Exact for the built-in ECC schemes via guess-and-correct masked
        walks (the guess is off by at most a couple of bits); arbitrary
        schemes fall back to the scalar search per element.
        """
        payload = np.asarray(payload_capacity, dtype=np.int64)
        flat = payload.ravel()
        if not isinstance(self.ecc, (FractionalECC, NoECC)):
            out = np.array(
                [self._max_user_bits_with_payload(int(p)) for p in flat],
                dtype=np.int64,
            )
            return out.reshape(payload.shape)
        positive = flat > 0
        su = np.where(
            positive,
            (flat / (1.0 + self.ecc.overhead_ratio())).astype(np.int64) + 2,
            0,
        )

        def overflows(candidate: np.ndarray) -> np.ndarray:
            return candidate + self.ecc_bits_batch(candidate) > flat

        over = (su > 0) & overflows(su)
        while over.any():
            su[over] -= 1
            over = (su > 0) & overflows(su)
        fits_next = positive & ~overflows(su + 1)
        while fits_next.any():
            su[fits_next] += 1
            fits_next = positive & ~overflows(su + 1)
        return su.reshape(payload.shape)

    # -- inverse direction: minimal Su for a utilisation target -------------

    def min_user_bits_for_utilisation(self, target: float) -> int:
        """Smallest ``Su`` (bits) whose utilisation reaches ``target``.

        This is the inverse function of Equation (4) used in §IV.C: the
        capacity constraint ``C`` of a design goal translates into a minimal
        sector size, hence (via ``B >= Su``) a minimal streaming buffer.

        The saw-tooth is handled exactly: we iterate over subsector sizes
        ``s`` in increasing order; within a fixed ``s`` the utilisation
        ``Su / (K * s)`` grows linearly with ``Su`` up to the largest
        payload that still fits, so the first ``s`` admitting the target
        yields the global minimiser.

        Raises
        ------
        InfeasibleDesignError
            If ``target`` is not strictly below :attr:`utilisation_supremum`
            (or not reachable by any finite sector).
        """
        if not 0 < target <= 1:
            raise ConfigurationError(f"target must lie in (0, 1], got {target!r}")
        supremum = self.utilisation_supremum
        if target >= supremum:
            raise InfeasibleDesignError(
                f"utilisation target {target:.4f} is not below the formatting "
                f"supremum {supremum:.4f} (ECC overhead "
                f"{self.ecc.overhead_ratio():.4f})",
                constraint="capacity",
            )

        c = self.sync_bits_per_subsector
        k = self.stripe_width
        s_start = self._start_subsector(target)
        # The envelope also bounds how far we may have to look: utilisation
        # within a subsector class s is at most (1 - c/s)/(1 + e) + slack of
        # one payload column, so a proportional safety margin suffices.
        s_limit = max(s_start * 4 + 64, 1024)

        for s in range(max(s_start, c + 1), s_limit + 1):
            payload_capacity = k * (s - c)
            su_max = self._max_user_bits_with_payload(payload_capacity)
            if su_max <= 0:
                continue
            su_needed = math.ceil(target * k * s)
            if su_needed <= su_max:
                return su_needed
        raise InfeasibleDesignError(  # pragma: no cover - defensive
            f"no subsector size up to {s_limit} reaches utilisation "
            f"{target:.4f}; supremum is {supremum:.4f}",
            constraint="capacity",
        )

    def _start_subsector(self, target: float) -> int:
        """Smooth-envelope estimate of the subsector size ``target`` needs.

        The exact answer can only be >= this (ceilings never help), so
        the inverse search starts here.  Monotone non-decreasing in the
        target, which is what lets the batch inverse walk a sorted grid
        of targets in one forward pass.
        """
        c = self.sync_bits_per_subsector
        if c == 0:
            return 1
        denominator = 1.0 - target * (1.0 + self.ecc.overhead_ratio())
        return max(1 + c, math.floor(c / denominator))

    def min_user_bits_for_utilisation_batch(
        self, targets: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`min_user_bits_for_utilisation` over a grid.

        Returns a float array of minimal ``Su`` values; targets at or
        above the ECC supremum — or unreachable within the scalar
        search bound, which chunky ECC schemes can produce below it —
        map to ``inf`` (infeasibility is a result on a grid, not an
        error).  Exactness is preserved: targets are
        sorted and resolved in one forward walk over subsector sizes,
        using the prefix property that within a subsector class a
        smaller target is admitted whenever a larger one is — so every
        point gets the same first-admitting subsector (and hence the
        same answer, bit for bit) as the scalar search.
        """
        t = np.asarray(targets, dtype=float)
        flat = t.ravel()
        out = np.full(flat.shape, math.inf)
        if flat.size == 0:
            return out.reshape(t.shape)
        if np.any(np.isnan(flat)) or not bool((flat > 0).all()):
            raise ConfigurationError("targets must be positive")
        feasible = np.flatnonzero(flat < self.utilisation_supremum)
        if feasible.size:
            order = feasible[np.argsort(flat[feasible], kind="stable")]
            self._resolve_sorted_targets(flat, order, out)
        return out.reshape(t.shape)

    def _resolve_sorted_targets(
        self, targets: np.ndarray, order: np.ndarray, out: np.ndarray
    ) -> None:
        """Resolve ``targets[order]`` (ascending) into ``out`` in place.

        Walks subsector sizes upward once, resolving the prefix of
        still-open targets each size admits; jumping to the next
        target's envelope start skips only sizes the scalar search
        would never have visited for any remaining target.
        """
        c = self.sync_bits_per_subsector
        k = self.stripe_width
        pos = 0
        s = 0
        while pos < order.size:
            s = max(
                s, self._start_subsector(float(targets[order[pos]])), c + 1
            )
            su_max = self._max_user_bits_with_payload(k * (s - c))
            while pos < order.size:
                target = float(targets[order[pos]])
                if s > max(self._start_subsector(target) * 4 + 64, 1024):
                    # Past this target's scalar search bound without an
                    # admitting subsector: the scalar path raises per
                    # target (callers fold it to inf per point), so the
                    # batch leaves inf and moves on — one chunky-ECC
                    # target must not poison the rest of the grid.
                    pos += 1
                    continue
                su_needed = math.ceil(target * k * s)
                if su_max <= 0 or su_needed > su_max:
                    break
                out[order[pos]] = float(su_needed)
                pos += 1
            s += 1

    def _max_user_bits_with_payload(self, payload_capacity: int) -> int:
        """Largest ``Su`` with ``Su + ecc_bits(Su) <= payload_capacity``."""
        if payload_capacity <= 0:
            return 0
        ratio = self.ecc.overhead_ratio()
        guess = int(payload_capacity / (1.0 + ratio)) + 2
        su = guess
        while su > 0 and su + self.ecc.ecc_bits(su) > payload_capacity:
            su -= 1
        # Guard against an under-estimate of the guess (non-linear schemes).
        while (su + 1) + self.ecc.ecc_bits(su + 1) <= payload_capacity:
            su += 1
        return su
