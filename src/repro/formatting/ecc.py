"""Error-correction-code (ECC) sizing schemes.

A storage device stores ECC bits next to user data in every sector
(§III.B.1 of the paper).  The paper models ECC as a fixed fraction of the
user data — one-eighth, in line with the IBM MEMS device — via

    S_ECC = ceil(Su / 8).

:class:`FractionalECC` implements exactly that.  :class:`ReedSolomonECC` is
an extension: it sizes parity from a Reed-Solomon code's parameters rather
than a fixed ratio, which lets ablation studies ask how the capacity story
changes under a concrete code.  Both satisfy the :class:`ECCScheme`
interface consumed by :mod:`repro.formatting.sector`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..errors import ConfigurationError


class ECCScheme(ABC):
    """Interface: map a user-data size to the ECC bits stored beside it."""

    @abstractmethod
    def ecc_bits(self, user_bits: int) -> int:
        """Number of ECC bits stored for ``user_bits`` of user data."""

    @abstractmethod
    def overhead_ratio(self) -> float:
        """Asymptotic ECC overhead as a fraction of user data.

        Used by the closed-form capacity envelope: for large sectors,
        ``ecc_bits(Su) -> overhead_ratio() * Su``.
        """

    def stored_bits(self, user_bits: int) -> int:
        """Total payload bits (user + ECC) stored for ``user_bits``."""
        return user_bits + self.ecc_bits(user_bits)


@dataclass(frozen=True)
class NoECC(ECCScheme):
    """Degenerate scheme storing no ECC at all (baseline for ablations)."""

    def ecc_bits(self, user_bits: int) -> int:
        if user_bits < 0:
            raise ConfigurationError("user_bits must be >= 0")
        return 0

    def overhead_ratio(self) -> float:
        return 0.0


@dataclass(frozen=True)
class FractionalECC(ECCScheme):
    """ECC sized as a fixed fraction of the user data (the paper's model).

    ``ecc_bits(Su) = ceil(Su * numerator / denominator)``.

    The paper uses 1/8 for MEMS (IBM device) and cites 1/10 for disk
    drives [3].
    """

    numerator: int = 1
    denominator: int = 8

    def __post_init__(self) -> None:
        if self.numerator < 0 or self.denominator <= 0:
            raise ConfigurationError(
                f"ECC fraction must be non-negative with a positive "
                f"denominator, got {self.numerator}/{self.denominator}"
            )

    def ecc_bits(self, user_bits: int) -> int:
        if user_bits < 0:
            raise ConfigurationError("user_bits must be >= 0")
        return -((-user_bits * self.numerator) // self.denominator)  # ceil

    def overhead_ratio(self) -> float:
        return self.numerator / self.denominator


@dataclass(frozen=True)
class ReedSolomonECC(ECCScheme):
    """Parity sized from Reed-Solomon code parameters (extension).

    User data is split into codewords of ``data_symbols`` symbols of
    ``symbol_bits`` bits each; every codeword carries ``2 * correctable``
    parity symbols (an RS(n, k) code corrects ``t = (n - k) / 2`` symbol
    errors).  The codeword length must respect ``n <= 2**symbol_bits - 1``.

    With the defaults (8-bit symbols, 16 correctable errors per 223-symbol
    data block — RS(255, 223), the CCSDS standard code), the overhead is
    ~14.3%, close to the paper's one-eighth model.
    """

    symbol_bits: int = 8
    data_symbols: int = 223
    correctable: int = 16

    def __post_init__(self) -> None:
        if self.symbol_bits <= 0:
            raise ConfigurationError("symbol_bits must be > 0")
        if self.data_symbols <= 0:
            raise ConfigurationError("data_symbols must be > 0")
        if self.correctable < 0:
            raise ConfigurationError("correctable must be >= 0")
        n = self.data_symbols + self.parity_symbols_per_codeword
        if n > 2 ** self.symbol_bits - 1:
            raise ConfigurationError(
                f"codeword length {n} exceeds the RS bound "
                f"{2 ** self.symbol_bits - 1} for {self.symbol_bits}-bit symbols"
            )

    @property
    def parity_symbols_per_codeword(self) -> int:
        """Parity symbols per codeword (``2t``)."""
        return 2 * self.correctable

    def codewords(self, user_bits: int) -> int:
        """Number of codewords needed to cover ``user_bits`` of user data."""
        if user_bits < 0:
            raise ConfigurationError("user_bits must be >= 0")
        if user_bits == 0:
            return 0
        data_bits_per_codeword = self.symbol_bits * self.data_symbols
        return math.ceil(user_bits / data_bits_per_codeword)

    def ecc_bits(self, user_bits: int) -> int:
        return (
            self.codewords(user_bits)
            * self.parity_symbols_per_codeword
            * self.symbol_bits
        )

    def overhead_ratio(self) -> float:
        return self.parity_symbols_per_codeword / self.data_symbols
