"""Wear-levelling across sectors: the assumption behind Equation (6).

§III.C.2 derives the probes lifetime "assuming a perfect balance in
writing across all probes".  Striping already balances wear across
probes *within* a sector; whether wear balances across *sectors*
depends on the write-placement policy and the workload's skew.  This
module makes that assumption executable:

* :class:`SectorWearMap` — per-sector write counters for a formatted
  device,
* placement policies — :class:`DirectPlacement` (logical = physical,
  no levelling), :class:`RotatingPlacement` (start-shifted round robin,
  the classic log-style leveller), :class:`LeastWornPlacement` (greedy
  optimum, an upper bound),
* :func:`simulate_wear` — drive a policy with a (possibly skewed)
  write workload and report the *wear-levelling efficiency*: the ratio
  of achieved lifetime (limited by the most-worn sector) to the ideal
  perfectly-balanced lifetime that Equation (6) assumes.

A streaming workload that records over the medium front-to-back is
naturally balanced (efficiency ~1, vindicating the paper); a skewed
file-system workload under direct placement is not, and the levelling
policies recover most of the gap.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


class SectorWearMap:
    """Write counters for every physical sector of a formatted device."""

    def __init__(self, sector_count: int, write_cycle_rating: float):
        if sector_count <= 0:
            raise ConfigurationError("sector_count must be > 0")
        if write_cycle_rating <= 0:
            raise ConfigurationError("write_cycle_rating must be > 0")
        self.sector_count = sector_count
        self.write_cycle_rating = write_cycle_rating
        self._writes = np.zeros(sector_count, dtype=np.int64)

    def record_write(self, physical_sector: int) -> None:
        """Count one overwrite of ``physical_sector``."""
        if not 0 <= physical_sector < self.sector_count:
            raise ConfigurationError(
                f"sector {physical_sector} outside 0..{self.sector_count - 1}"
            )
        self._writes[physical_sector] += 1

    # -- statistics -----------------------------------------------------------

    @property
    def total_writes(self) -> int:
        """Total sector writes recorded."""
        return int(self._writes.sum())

    @property
    def max_writes(self) -> int:
        """Writes to the most-worn sector (the lifetime limiter)."""
        return int(self._writes.max())

    @property
    def mean_writes(self) -> float:
        """Mean writes per sector (the perfectly-balanced figure)."""
        return float(self._writes.mean())

    def writes_to(self, physical_sector: int) -> int:
        """Writes recorded against one sector."""
        return int(self._writes[physical_sector])

    @property
    def wear_efficiency(self) -> float:
        """Achieved fraction of the perfectly-balanced lifetime.

        ``mean / max`` of the per-sector write counts: 1.0 means the
        device dies exactly when Equation (6) predicts; 0.1 means the
        hottest sector burns out at a tenth of the ideal lifetime.
        Defined as 1.0 for an unwritten device.
        """
        if self.max_writes == 0:
            return 1.0
        return self.mean_writes / self.max_writes

    @property
    def rating_fraction_used(self) -> float:
        """Fraction of the hottest sector's write rating consumed."""
        return self.max_writes / self.write_cycle_rating

    def lifetime_scale(self) -> float:
        """Multiplier to apply to Equation (6)'s lifetime.

        Equation (6) assumes balance; the achieved lifetime is the ideal
        one scaled by :attr:`wear_efficiency`.
        """
        return self.wear_efficiency


class PlacementPolicy(ABC):
    """Maps logical sector writes to physical sectors."""

    def __init__(self, sector_count: int):
        if sector_count <= 0:
            raise ConfigurationError("sector_count must be > 0")
        self.sector_count = sector_count

    @abstractmethod
    def place(self, logical_sector: int, wear: SectorWearMap) -> int:
        """Physical sector to absorb a write of ``logical_sector``."""


class DirectPlacement(PlacementPolicy):
    """No levelling: logical address = physical address (baseline)."""

    def place(self, logical_sector: int, wear: SectorWearMap) -> int:
        return logical_sector % self.sector_count


class RotatingPlacement(PlacementPolicy):
    """Start-shifted placement: the mapping rotates every N writes.

    The classic cheap leveller: a single offset register shifts the
    whole logical-to-physical mapping by one sector every
    ``rotation_period`` writes, so hot logical sectors sweep across the
    medium over time.
    """

    def __init__(self, sector_count: int, rotation_period: int = 64):
        super().__init__(sector_count)
        if rotation_period <= 0:
            raise ConfigurationError("rotation_period must be > 0")
        self.rotation_period = rotation_period
        self._writes_seen = 0
        self._offset = 0

    def place(self, logical_sector: int, wear: SectorWearMap) -> int:
        physical = (logical_sector + self._offset) % self.sector_count
        self._writes_seen += 1
        if self._writes_seen % self.rotation_period == 0:
            self._offset = (self._offset + 1) % self.sector_count
        return physical


class LeastWornPlacement(PlacementPolicy):
    """Greedy optimum: always write the least-worn sector.

    Ignores read locality entirely (a real device would pay remapping
    metadata); serves as the achievable upper bound on levelling.
    """

    def place(self, logical_sector: int, wear: SectorWearMap) -> int:
        return int(np.argmin(wear._writes))


@dataclass(frozen=True)
class WearSimulationResult:
    """Outcome of :func:`simulate_wear`."""

    policy: str
    sector_count: int
    total_writes: int
    max_writes: int
    mean_writes: float
    wear_efficiency: float

    @property
    def lifetime_penalty(self) -> float:
        """Factor by which the achieved lifetime falls short of Eq. (6)."""
        if self.wear_efficiency == 0:
            return float("inf")
        return 1.0 / self.wear_efficiency


def zipf_write_workload(
    sector_count: int,
    total_writes: int,
    skew: float = 0.0,
    seed: int = 2011,
) -> np.ndarray:
    """Logical-sector write sequence with Zipf-like skew.

    ``skew = 0`` gives the uniform (streaming, front-to-back) pattern
    the paper assumes; larger values concentrate writes on few sectors
    (file-system metadata hot spots).
    """
    if sector_count <= 0 or total_writes <= 0:
        raise ConfigurationError("counts must be > 0")
    if skew < 0:
        raise ConfigurationError("skew must be >= 0")
    if skew == 0:
        # Sequential overwrite: the streaming-recorder pattern.
        return np.arange(total_writes, dtype=np.int64) % sector_count
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, sector_count + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    return rng.choice(sector_count, size=total_writes, p=weights)


def simulate_wear(
    policy: PlacementPolicy,
    logical_writes: np.ndarray,
    write_cycle_rating: float = 100.0,
) -> WearSimulationResult:
    """Drive a placement policy with a write sequence; report balance."""
    wear = SectorWearMap(policy.sector_count, write_cycle_rating)
    for logical in logical_writes:
        wear.record_write(policy.place(int(logical), wear))
    return WearSimulationResult(
        policy=type(policy).__name__,
        sector_count=policy.sector_count,
        total_writes=wear.total_writes,
        max_writes=wear.max_writes,
        mean_writes=wear.mean_writes,
        wear_efficiency=wear.wear_efficiency,
    )
