"""Whole-device formatting: from raw capacity to user capacity.

§III.B of the paper quotes a single worked example: with the Table I
device formatted at its best utilisation, "approximately 106 GB out of
120 GB" of user capacity remain (~88%).  :class:`DeviceLayout` generalises
that arithmetic: given a raw medium and a sector layout, it reports sector
counts, per-category bit budgets (user / ECC / sync / padding) and the
formatted user capacity for any chosen sector size.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import units
from ..config import MEMSDeviceConfig
from ..errors import ConfigurationError
from .ecc import FractionalECC
from .sector import SectorFormat, SectorLayout


@dataclass(frozen=True)
class FormattedCapacity:
    """Bit budget of a device formatted with a fixed sector size."""

    raw_bits: float
    sector: SectorFormat
    sector_count: int

    @property
    def user_bits(self) -> float:
        """Bits available to user data after formatting."""
        return self.sector_count * self.sector.user_bits

    @property
    def ecc_bits(self) -> float:
        """Bits consumed by error-correction codes."""
        return self.sector_count * self.sector.ecc_bits

    @property
    def sync_bits(self) -> float:
        """Bits consumed by subsector synchronisation fields."""
        return self.sector_count * self.sector.sync_bits_total

    @property
    def padding_bits(self) -> float:
        """Bits lost to stripe rounding inside sectors."""
        return self.sector_count * self.sector.padding_bits

    @property
    def unallocated_bits(self) -> float:
        """Raw bits left over after the last whole sector."""
        return self.raw_bits - self.sector_count * self.sector.sector_bits

    @property
    def utilisation(self) -> float:
        """Fraction of the raw medium holding user data."""
        return self.user_bits / self.raw_bits

    @property
    def user_gb(self) -> float:
        """Formatted user capacity in decimal gigabytes."""
        return units.bits_to_gb(self.user_bits)


class DeviceLayout:
    """Formatting calculator for a MEMS device.

    Binds a :class:`~repro.config.MEMSDeviceConfig` to the
    :class:`~repro.formatting.sector.SectorLayout` implied by its striping
    and ECC parameters.
    """

    def __init__(self, device: MEMSDeviceConfig, layout: SectorLayout | None = None):
        self.device = device
        if layout is None:
            layout = SectorLayout(
                stripe_width=device.active_probes,
                sync_bits_per_subsector=device.sync_bits_per_subsector,
                ecc=FractionalECC(device.ecc_numerator, device.ecc_denominator),
            )
        elif layout.stripe_width != device.active_probes:
            raise ConfigurationError(
                "sector layout stripe width must match the device's active "
                f"probes ({device.active_probes}), got {layout.stripe_width}"
            )
        self.layout = layout

    def format_with_sector(self, user_bits: int) -> FormattedCapacity:
        """Format the whole device with sectors of ``user_bits`` user data."""
        sector = self.layout.format_sector(user_bits)
        count = int(self.device.capacity_bits // sector.sector_bits)
        if count == 0:
            raise ConfigurationError(
                f"sector of {sector.sector_bits} bits does not fit the "
                f"device capacity of {self.device.capacity_bits:g} bits"
            )
        return FormattedCapacity(
            raw_bits=self.device.capacity_bits,
            sector=sector,
            sector_count=count,
        )

    def user_capacity_bits(self, user_bits_per_sector: int) -> float:
        """Formatted user capacity (bits) for a given sector size."""
        return self.format_with_sector(user_bits_per_sector).user_bits

    def best_utilisation_at_most(self, max_user_bits: int) -> FormattedCapacity:
        """Best formatting with sectors of at most ``max_user_bits``.

        The utilisation saw-tooth means the largest admissible sector is not
        always the best one; this scans the saw-tooth peaks (payload sizes
        that are exact multiples of the stripe width) up to the cap.
        """
        if max_user_bits <= 0:
            raise ConfigurationError("max_user_bits must be > 0")
        best: FormattedCapacity | None = None
        # Saw-tooth peaks sit just below payload multiples of the stripe
        # width; additionally consider the cap itself.
        candidates = {max_user_bits}
        k = self.layout.stripe_width
        payload_cap = max_user_bits + self.layout.ecc.ecc_bits(max_user_bits)
        # Peak utilisation grows (essentially) monotonically with the column
        # count, so only the peaks near the cap can win; a 64-column window
        # absorbs the +/- 1-bit jitter from the ECC ceiling.
        first_column = max(1, payload_cap // k - 64)
        for columns in range(first_column, payload_cap // k + 1):
            su = self.layout._max_user_bits_with_payload(columns * k)
            if 0 < su <= max_user_bits:
                candidates.add(su)
        for su in candidates:
            formatted = self.format_with_sector(su)
            if best is None or formatted.utilisation > best.utilisation:
                best = formatted
        assert best is not None
        return best
