"""Pure-Python reference implementations of the hot kernels.

The ``scalar`` tier is the ground truth: every operation is written in
the same order as the ``numpy`` and ``native`` tiers (reciprocals kept
as reciprocals, guesses truncated the same way), so the three tiers
agree bit for bit on integers and within 1 ULP on floats — which is
exactly what the parity suite in ``tests/kernels/`` asserts.  Nobody
dispatches here for speed; set ``REPRO_KERNELS=scalar`` to debug a
parity failure one lane at a time.
"""

from __future__ import annotations

import math
import struct

import numpy as np

#: Offsets window of the saw-tooth peak search: the candidate peaks are
#: the stripe columns ``top_column - 0 .. top_column - 64`` (plus the
#: cap itself), the same window the pre-kernel chunked code scanned.
SAWTOOTH_OFFSETS = 65

#: Bisection iteration cap and relative convergence tolerance, shared
#: by every tier (and by the scalar ``energy_wall_rate`` method).
BISECT_ITERATIONS = 80
BISECT_RTOL = 1e-12

_STRUCT_CODE = {"<f8": "d", "<i8": "q", "|u1": "B"}


def _max_saving(
    rate: float,
    rm: float,
    p_rw: float,
    p_sb: float,
    p_idle: float,
    be_frac: float,
) -> float:
    """``EnergyModel.max_energy_saving`` as a closed form of constants.

    Operation order mirrors ``max_energy_saving_batch`` exactly
    (reciprocal-then-multiply for the transfer term) so the tiers
    cannot drift apart by association.
    """
    net = rm - rate
    always_on = p_rw / net + p_idle / rate
    cycle_per_bit = rm / (rate * net)
    transfer = (1.0 / net) * (p_rw - p_sb)
    best_effort = be_frac * cycle_per_bit * (p_rw - p_sb)
    standby = cycle_per_bit * p_sb
    return 1.0 - (transfer + best_effort + standby) / always_on


def energy_wall_bisect(
    goals,
    rate_min: float,
    rate_max: float,
    rm: float,
    p_rw: float,
    p_sb: float,
    p_idle: float,
    be_frac: float,
) -> np.ndarray:
    """Log-domain bisection of the energy wall, one lane per goal.

    Every lane handed to this kernel is known to bracket its wall
    (reachable at ``rate_min``, unreachable at ``rate_max``); the
    pre-classification lives at the call site.  A NaN goal never
    satisfies ``saving > goal`` and converges onto ``rate_min`` — the
    same lane behaviour on every tier.
    """
    goals = np.asarray(goals, dtype=np.float64)
    out = np.empty(goals.shape, dtype=np.float64)
    flat = goals.ravel()
    flat_out = out.ravel()
    for index in range(flat.size):
        goal = float(flat[index])
        lo, hi = float(rate_min), float(rate_max)
        for _ in range(BISECT_ITERATIONS):
            mid = math.sqrt(lo * hi)
            if _max_saving(mid, rm, p_rw, p_sb, p_idle, be_frac) > goal:
                lo = mid
            else:
                hi = mid
            if hi / lo < 1.0 + BISECT_RTOL:
                break
        flat_out[index] = math.sqrt(lo * hi)
    return out


def _ecc_bits(user_bits: int, num: int, den: int) -> int:
    """``ceil(user_bits * num / den)`` in exact integer arithmetic."""
    return -((-user_bits * num) // den)


def _sector_bits(user_bits: int, k: int, c: int, num: int, den: int) -> int:
    """Equations (2)-(3): stored sector size for one user-bit count."""
    payload = user_bits + _ecc_bits(user_bits, num, den)
    return k * (-((-payload) // k) + c)


def _max_su_with_payload(payload: int, num: int, den: int) -> int:
    """Largest ``Su`` with ``Su + ecc(Su) <= payload`` (guess + correct)."""
    if payload <= 0:
        return 0
    ratio = num / den
    su = int(payload / (1.0 + ratio)) + 2
    while su > 0 and su + _ecc_bits(su, num, den) > payload:
        su -= 1
    while (su + 1) + _ecc_bits(su + 1, num, den) <= payload:
        su += 1
    return su


def sawtooth_best_user_bits(
    caps, k: int, c: int, num: int, den: int
) -> np.ndarray:
    """Best saw-tooth ``Su <= cap`` per cap, for fractional/no ECC.

    Candidate order matches the vectorised tier: the cap itself first,
    then the peaks of the 65 stripe columns walking down from the
    cap's own column; ties keep the earliest candidate (``argmax``
    semantics), so every tier returns the identical ``Su``.
    """
    caps = np.asarray(caps, dtype=np.int64)
    out = np.empty(caps.shape, dtype=np.int64)
    flat = caps.ravel()
    flat_out = out.ravel()
    for index in range(flat.size):
        cap = int(flat[index])
        payload_cap = cap + _ecc_bits(cap, num, den)
        top_column = payload_cap // k
        best_su = cap
        best_util = cap / _sector_bits(cap, k, c, num, den)
        for offset in range(SAWTOOTH_OFFSETS):
            column = top_column - offset
            if column < 1:
                column = 1
            su = _max_su_with_payload(column * k, num, den)
            if 0 < su <= cap:
                util = su / _sector_bits(su, k, c, num, den)
                if util > best_util:
                    best_su, best_util = su, util
        flat_out[index] = best_su
    return out


def codec_pack(column, dtype: str) -> bytes:
    """One column as little-endian bytes, element by element."""
    values = np.asarray(column)
    code = _STRUCT_CODE[dtype]
    if code == "d":
        items = [float(v) for v in values.tolist()]
    else:
        items = [int(v) for v in values.tolist()]
    return struct.pack(f"<{len(items)}{code}", *items)


def codec_unpack(
    blob: bytes, dtype: str, count: int, offset: int
) -> np.ndarray:
    """Decode ``count`` elements of ``dtype`` starting at ``offset``."""
    code = _STRUCT_CODE[dtype]
    items = struct.unpack_from(f"<{count}{code}", blob, offset)
    return np.array(items, dtype=dtype)


def register_scalar(registry) -> None:
    """Register every scalar-tier kernel on ``registry``."""
    registry.register("energy_wall_bisect", "scalar", energy_wall_bisect)
    registry.register(
        "sawtooth_best_user_bits", "scalar", sawtooth_best_user_bits
    )
    registry.register("codec_pack", "scalar", codec_pack)
    registry.register("codec_unpack", "scalar", codec_unpack)
