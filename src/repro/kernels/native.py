"""Native (``numba``) tier: JIT-compiled twins of the hot kernels.

Importing this module requires numba (the optional ``repro[native]``
extra); the registry probes the import exactly once and falls back to
the numpy tier when it fails, so nothing outside this file may import
numba.  All kernels are ``@njit(cache=True)``: compiled machine code
is cached on disk and reloaded by later processes, which matters for
the fleet backend's single-job workers — without the cache every
worker subprocess would pay full JIT compilation per attempt.

``REPRO_KERNEL_CACHE_DIR`` pins the cache location (exported as
``NUMBA_CACHE_DIR`` *before* numba is first imported; numba reads it
at import time).  The fleet executor pins it to a directory next to
the store so all its workers share one cache.  :func:`warm_native`
compiles every runtime signature up front and reports how many came
from the on-disk cache versus a fresh compile — the
``kernel.cache.hit`` / ``kernel.cache.miss`` counters.
"""

from __future__ import annotations

import math
import os

from .registry import CACHE_DIR_ENV_VAR

_pinned = os.environ.get(CACHE_DIR_ENV_VAR, "").strip()
if _pinned:
    os.makedirs(_pinned, exist_ok=True)
    # setdefault: an explicit NUMBA_CACHE_DIR outranks the repro knob.
    os.environ.setdefault("NUMBA_CACHE_DIR", _pinned)

import numpy as np  # noqa: E402
from numba import njit  # noqa: E402

from .scalar import (  # noqa: E402
    BISECT_ITERATIONS,
    BISECT_RTOL,
    SAWTOOTH_OFFSETS,
)

_DTYPES = {"<f8": np.float64, "<i8": np.int64, "|u1": np.uint8}


@njit(cache=True)
def _wall_bisect(
    goals, rate_min, rate_max, rm, p_rw, p_sb, p_idle, be_frac
):  # pragma: no cover - exercised only when numba is installed
    out = np.empty(goals.shape[0], np.float64)
    for i in range(goals.shape[0]):
        goal = goals[i]
        lo = rate_min
        hi = rate_max
        for _ in range(BISECT_ITERATIONS):
            mid = math.sqrt(lo * hi)
            net = rm - mid
            always_on = p_rw / net + p_idle / mid
            cycle_per_bit = rm / (mid * net)
            transfer = (1.0 / net) * (p_rw - p_sb)
            best_effort = be_frac * cycle_per_bit * (p_rw - p_sb)
            standby = cycle_per_bit * p_sb
            saving = 1.0 - (transfer + best_effort + standby) / always_on
            if saving > goal:
                lo = mid
            else:
                hi = mid
            if hi / lo < 1.0 + BISECT_RTOL:
                break
        out[i] = math.sqrt(lo * hi)
    return out


@njit(cache=True)
def _ecc_bits_one(
    user_bits, num, den
):  # pragma: no cover - numba only
    return -((-user_bits * num) // den)


@njit(cache=True)
def _sector_bits_one(
    user_bits, k, c, num, den
):  # pragma: no cover - numba only
    payload = user_bits + _ecc_bits_one(user_bits, num, den)
    return k * (-((-payload) // k) + c)


@njit(cache=True)
def _max_su_one(payload, num, den):  # pragma: no cover - numba only
    if payload <= 0:
        return np.int64(0)
    ratio = num / den
    su = np.int64(payload / (1.0 + ratio)) + 2
    while su > 0 and su + _ecc_bits_one(su, num, den) > payload:
        su -= 1
    while (su + 1) + _ecc_bits_one(su + 1, num, den) <= payload:
        su += 1
    return su


@njit(cache=True)
def _sawtooth(caps, k, c, num, den):  # pragma: no cover - numba only
    out = np.empty(caps.shape[0], np.int64)
    for i in range(caps.shape[0]):
        cap = caps[i]
        payload_cap = cap + _ecc_bits_one(cap, num, den)
        top_column = payload_cap // k
        best_su = cap
        best_util = cap / _sector_bits_one(cap, k, c, num, den)
        for offset in range(SAWTOOTH_OFFSETS):
            column = top_column - offset
            if column < 1:
                column = np.int64(1)
            su = _max_su_one(column * k, num, den)
            if 0 < su <= cap:
                util = su / _sector_bits_one(su, k, c, num, den)
                if util > best_util:
                    best_su = su
                    best_util = util
        out[i] = best_su
    return out


@njit(cache=True)
def _copy_bytes(src, dst):  # pragma: no cover - numba only
    for i in range(src.shape[0]):
        dst[i] = src[i]


def energy_wall_bisect(
    goals, rate_min, rate_max, rm, p_rw, p_sb, p_idle, be_frac
) -> np.ndarray:
    """Native bisection: contiguous lanes into the jitted loop."""
    goals = np.ascontiguousarray(goals, dtype=np.float64)
    flat = goals.ravel()
    out = _wall_bisect(
        flat,
        float(rate_min),
        float(rate_max),
        float(rm),
        float(p_rw),
        float(p_sb),
        float(p_idle),
        float(be_frac),
    )
    return out.reshape(goals.shape)


def sawtooth_best_user_bits(caps, k, c, num, den) -> np.ndarray:
    """Native saw-tooth search: no chunking needed, O(1) temporaries."""
    caps = np.ascontiguousarray(caps, dtype=np.int64)
    flat = caps.ravel()
    out = _sawtooth(
        flat,
        np.int64(k),
        np.int64(c),
        np.int64(num),
        np.int64(den),
    )
    return out.reshape(caps.shape)


def codec_pack(column, dtype: str) -> bytes:
    """Native column pack: jitted byte blit from the typed view."""
    arr = np.ascontiguousarray(np.asarray(column), dtype=dtype)
    src = arr.view(np.uint8).reshape(-1)
    out = np.empty(src.shape[0], dtype=np.uint8)
    _copy_bytes(src, out)
    return out.tobytes()


def codec_unpack(
    blob: bytes, dtype: str, count: int, offset: int
) -> np.ndarray:
    """Native column unpack: jitted byte blit into a fresh array."""
    itemsize = np.dtype(dtype).itemsize
    src = np.frombuffer(
        blob, dtype=np.uint8, count=count * itemsize, offset=offset
    )
    out = np.empty(count, dtype=_DTYPES[dtype])
    _copy_bytes(src, out.view(np.uint8).reshape(-1))
    return out


_JITTED = (_wall_bisect, _ecc_bits_one, _sector_bits_one, _max_su_one,
           _sawtooth, _copy_bytes)

_warm_result: tuple[int, int] | None = None


def warm_native() -> tuple[int, int]:
    """Compile every runtime signature; report ``(cache_hits, misses)``.

    Called once per process (by ``warm_kernels``): later calls return
    ``(0, 0)`` so the cache counters are never double-counted.  Hit
    and miss counts come from numba's per-dispatcher compile stats
    when available, with a cache-directory file census as the
    fallback.
    """
    global _warm_result
    if _warm_result is not None:
        return 0, 0
    files_before = _cache_file_count()
    energy_wall_bisect(
        np.array([0.5]), 1.0e3, 1.0e6, 1.0e7, 1.0, 0.1, 0.5, 0.05
    )
    sawtooth_best_user_bits(np.array([4096], dtype=np.int64), 64, 3, 1, 8)
    codec_pack(np.array([1.0]), "<f8")
    codec_unpack(b"\x00" * 8, "<f8", 1, 0)
    hits = misses = 0
    counted = False
    for fn in _JITTED:
        stats = getattr(fn, "stats", None)
        if stats is None:
            continue
        counted = True
        hits += sum(getattr(stats, "cache_hits", {}).values())
        misses += sum(getattr(stats, "cache_misses", {}).values())
    if not counted:
        grew = _cache_file_count() - files_before
        if grew > 0:
            misses = grew
        else:
            hits = len(_JITTED)
    _warm_result = (hits, misses)
    return _warm_result


def _cache_file_count() -> int:
    """Compiled-artifact files under the pinned cache dir (heuristic)."""
    root = os.environ.get("NUMBA_CACHE_DIR", "").strip()
    if not root or not os.path.isdir(root):
        return 0
    total = 0
    for _, _, files in os.walk(root):
        total += sum(1 for name in files if name.endswith(".nbc"))
    return total


def register_native(registry) -> None:
    """Register every native-tier kernel on ``registry``."""
    registry.register("energy_wall_bisect", "native", energy_wall_bisect)
    registry.register(
        "sawtooth_best_user_bits", "native", sawtooth_best_user_bits
    )
    registry.register("codec_pack", "native", codec_pack)
    registry.register("codec_unpack", "native", codec_unpack)
