"""Tiered hot-kernel engine.

The innermost loops of the batch engine live behind a small registry
(:mod:`repro.kernels.registry`) with up to three implementations per
kernel: ``scalar`` (pure-Python reference), ``numpy`` (vectorised),
and ``native`` (numba JIT twins, optional ``repro[native]`` extra).
``REPRO_KERNELS`` selects the tier; the default ``auto`` probes numba
once and falls back to ``numpy`` cleanly, so the engine never *requires*
the native tier — it only gets faster when it is present.

Call sites dispatch with :func:`dispatch`; process pools and fleet
workers call :func:`warm_kernels` once up front so JIT compilation
(when any) happens before the first real batch.
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

from ..telemetry import metrics
from .numpy_impl import CHUNK_ROWS_ENV_VAR, batch_chunk_rows
from .registry import (
    CACHE_DIR_ENV_VAR,
    KERNELS_ENV_VAR,
    TIER_AUTO,
    TIER_CHOICES,
    TIER_CODES,
    TIER_NATIVE,
    TIER_NUMPY,
    TIER_SCALAR,
    TIERS,
    KernelRegistry,
    active_tier,
    default_registry,
    dispatch,
    kernel_cache_dir,
    pin_cache_dir,
    requested_tier,
    reset_kernels,
)

__all__ = [
    "CACHE_DIR_ENV_VAR",
    "CHUNK_ROWS_ENV_VAR",
    "KERNELS_ENV_VAR",
    "KernelRegistry",
    "TIER_AUTO",
    "TIER_CHOICES",
    "TIER_CODES",
    "TIER_NATIVE",
    "TIER_NUMPY",
    "TIER_SCALAR",
    "TIERS",
    "active_tier",
    "batch_chunk_rows",
    "default_registry",
    "dispatch",
    "kernel_cache_dir",
    "kernel_info",
    "pin_cache_dir",
    "requested_tier",
    "reset_kernels",
    "warm_kernels",
]

_warmed = False


def warm_kernels() -> str:
    """Pre-resolve the tier and pre-compile every kernel (idempotent).

    On the native tier this triggers numba compilation of every jitted
    kernel against its runtime signature, so worker processes pay JIT
    cost here — once, before the first real batch — instead of inside
    the first attempt.  Metered: ``kernel.warm.calls`` counts warms,
    ``kernel.cache.hit`` / ``kernel.cache.miss`` count how many jitted
    functions loaded from the on-disk cache versus compiled fresh, and
    the ``kernel.tier`` gauge carries the resolved tier.

    Returns the active tier name.
    """
    global _warmed
    registry = default_registry()
    tier = registry.active_tier()
    if _warmed:
        return tier
    _warmed = True
    meter = metrics()
    meter.count("kernel.warm.calls")
    meter.gauge("kernel.tier", TIER_CODES[tier])
    if tier == TIER_NATIVE:
        from . import native

        hits, misses = native.warm_native()
        if hits:
            meter.count("kernel.cache.hit", hits)
        if misses:
            meter.count("kernel.cache.miss", misses)
    else:
        # Cheap probe through the dispatcher: resolves every kernel's
        # implementation so the first real batch hits a warm path.
        registry.call(
            "energy_wall_bisect",
            np.array([0.5]), 1.0e3, 1.0e6, 1.0e7, 1.0, 0.1, 0.5, 0.05,
        )
        registry.call(
            "sawtooth_best_user_bits",
            np.array([4096], dtype=np.int64), 64, 3, 1, 8,
        )
        registry.call("codec_pack", np.array([1.0]), "<f8")
        registry.call("codec_unpack", b"\x00" * 8, "<f8", 1, 0)
    return tier


def reset_warm() -> None:
    """Forget the warm state (tests only)."""
    global _warmed
    _warmed = False


def kernel_info() -> dict[str, Any]:
    """A JSON-able snapshot of the kernel engine for CLI/debugging.

    Covers the requested and resolved tiers, native availability (and
    the import error when unavailable), the pinned JIT cache directory
    with a file/byte census, and the per-kernel tier table.
    """
    registry = default_registry()
    active = registry.active_tier()
    native_ok = registry.native_available()
    cache_dir = kernel_cache_dir()
    cache_files = 0
    cache_bytes = 0
    if cache_dir and os.path.isdir(cache_dir):
        for root, _, files in os.walk(cache_dir):
            for name in files:
                path = os.path.join(root, name)
                try:
                    cache_bytes += os.path.getsize(path)
                    cache_files += 1
                except OSError:
                    continue
    return {
        "requested_tier": requested_tier(),
        "active_tier": active,
        "native_available": native_ok,
        "native_error": registry.native_error,
        "cache_dir": cache_dir,
        "cache_files": cache_files,
        "cache_bytes": cache_bytes,
        "chunk_rows_override": os.environ.get(
            CHUNK_ROWS_ENV_VAR, ""
        ).strip() or None,
        "kernels": {
            name: list(registry.tiers_for(name))
            for name in registry.names()
        },
    }
