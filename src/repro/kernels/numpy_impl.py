"""Vectorised (``numpy`` tier) implementations of the hot kernels.

This is the code that used to live inline in
``DesignSpaceExplorer.energy_wall_rate_batch``,
``SectorLayout._best_user_bits_chunk``, and ``runner/codec.py`` —
refactored behind the kernel registry, operation for operation, so
moving it here changed no answer.  One behavioural upgrade rode along:
the saw-tooth peak search's fixed 16384-row chunking is now *adaptive*
(:func:`batch_chunk_rows`): the chunk size is derived from the row
width of the candidate matrix against a fixed memory budget, with
``REPRO_BATCH_CHUNK_ROWS`` as the explicit override.
"""

from __future__ import annotations

import os

import numpy as np

from .scalar import BISECT_ITERATIONS, BISECT_RTOL, SAWTOOTH_OFFSETS

#: Environment variable forcing the chunk row count of chunked batch
#: passes (the saw-tooth candidate matrix).  Unset = adaptive.
CHUNK_ROWS_ENV_VAR = "REPRO_BATCH_CHUNK_ROWS"

#: Peak-memory budget one chunked batch pass may spend on temporaries.
#: 32 MiB reproduces the old fixed 16k-row chunk at the saw-tooth's
#: 66-column row width while scaling down for wider matrices.
CHUNK_BUDGET_BYTES = 32 * 1024 * 1024

#: Adaptive chunk clamp: never degenerate to tiny Python-loop-bound
#: chunks, never balloon past the budget's intent.
MIN_CHUNK_ROWS = 1_024
MAX_CHUNK_ROWS = 65_536


def batch_chunk_rows(
    row_width: int, itemsize: int = 8, temporaries: int = 4
) -> int:
    """Rows per chunk for a chunked ``(rows x row_width)`` batch pass.

    Sized so ``temporaries`` live copies of the chunk matrix fit the
    :data:`CHUNK_BUDGET_BYTES` budget (the saw-tooth pass materialises
    the candidate matrix, its sector sizes, and the utilisation grid
    at once).  ``REPRO_BATCH_CHUNK_ROWS`` overrides the computation
    outright — the benchmark suite uses it to pin comparisons.
    """
    override = os.environ.get(CHUNK_ROWS_ENV_VAR, "").strip()
    if override:
        return max(1, int(override))
    bytes_per_row = max(1, row_width * itemsize * temporaries)
    rows = CHUNK_BUDGET_BYTES // bytes_per_row
    return int(min(MAX_CHUNK_ROWS, max(MIN_CHUNK_ROWS, rows)))


def energy_wall_bisect(
    goals,
    rate_min: float,
    rate_max: float,
    rm: float,
    p_rw: float,
    p_sb: float,
    p_idle: float,
    be_frac: float,
) -> np.ndarray:
    """Lockstep log-domain bisection: all lanes as one array.

    Per-lane semantics (midpoints, the reach test, the retirement
    tolerance) are identical to the scalar tier; the convergence mask
    just retires finished lanes so a late straggler never re-evaluates
    the whole grid.
    """
    goals = np.asarray(goals, dtype=np.float64)
    flat = goals.ravel()
    lo = np.full(flat.shape, float(rate_min))
    hi = np.full(flat.shape, float(rate_max))
    live = np.ones(flat.shape, dtype=bool)
    for _ in range(BISECT_ITERATIONS):
        sel = np.flatnonzero(live)
        if sel.size == 0:
            break
        mid = np.sqrt(lo[sel] * hi[sel])
        net = rm - mid
        always_on = p_rw / net + p_idle / mid
        cycle_per_bit = rm / (mid * net)
        transfer = (1.0 / net) * (p_rw - p_sb)
        best_effort = be_frac * cycle_per_bit * (p_rw - p_sb)
        standby = cycle_per_bit * p_sb
        saving = 1.0 - (transfer + best_effort + standby) / always_on
        reach = saving > flat[sel]
        lo[sel[reach]] = mid[reach]
        hi[sel[~reach]] = mid[~reach]
        live[sel] = hi[sel] / lo[sel] >= 1.0 + BISECT_RTOL
    return np.sqrt(lo * hi).reshape(goals.shape)


def _ecc_bits(user_bits: np.ndarray, num: int, den: int) -> np.ndarray:
    """Vectorised ``ceil(u * num / den)`` (exact int64 arithmetic)."""
    return -((-user_bits * num) // den)


def _sector_bits(
    user_bits: np.ndarray, k: int, c: int, num: int, den: int
) -> np.ndarray:
    """Vectorised Equations (2)-(3) for fractional/no ECC."""
    payload = user_bits + _ecc_bits(user_bits, num, den)
    return k * (-((-payload) // k) + c)


def _max_su_with_payload(
    payload: np.ndarray, num: int, den: int
) -> np.ndarray:
    """Vectorised guess-and-correct inverse of the payload budget."""
    positive = payload > 0
    ratio = num / den
    su = np.where(
        positive,
        (payload / (1.0 + ratio)).astype(np.int64) + 2,
        0,
    )

    def overflows(candidate: np.ndarray) -> np.ndarray:
        return candidate + _ecc_bits(candidate, num, den) > payload

    over = (su > 0) & overflows(su)
    while over.any():
        su[over] -= 1
        over = (su > 0) & overflows(su)
    fits_next = positive & ~overflows(su + 1)
    while fits_next.any():
        su[fits_next] += 1
        fits_next = positive & ~overflows(su + 1)
    return su


def _sawtooth_chunk(
    caps: np.ndarray, k: int, c: int, num: int, den: int
) -> np.ndarray:
    """One bounded chunk of the saw-tooth peak search."""
    payload_cap = caps + _ecc_bits(caps, num, den)
    top_column = payload_cap // k
    offsets = np.arange(0, SAWTOOTH_OFFSETS, dtype=np.int64)
    columns = np.maximum(top_column[:, None] - offsets[None, :], 1)
    su = _max_su_with_payload(columns * k, num, den)
    valid = (su > 0) & (su <= caps[:, None])
    # The cap itself is always a candidate; invalid peaks stay in the
    # matrix as a harmless placeholder and are excluded from the
    # argmax by forcing their utilisation below any real one.
    candidates = np.concatenate(
        [caps[:, None], np.where(valid, su, 1)], axis=1
    )
    utilisation = candidates / _sector_bits(candidates, k, c, num, den)
    utilisation[:, 1:][~valid] = -1.0
    best = np.argmax(utilisation, axis=1)
    return candidates[np.arange(caps.size), best]


def sawtooth_best_user_bits(
    caps, k: int, c: int, num: int, den: int
) -> np.ndarray:
    """Vectorised saw-tooth peak search, processed in adaptive chunks.

    The ``(chunk x 66)`` candidate matrix keeps peak memory O(chunk)
    regardless of the grid size; :func:`batch_chunk_rows` sizes the
    chunk from the matrix row width instead of the old fixed 16384.
    """
    caps = np.asarray(caps, dtype=np.int64)
    flat = caps.ravel()
    out = np.empty(flat.shape, dtype=np.int64)
    chunk = batch_chunk_rows(SAWTOOTH_OFFSETS + 1)
    for start in range(0, flat.size, chunk):
        out[start : start + chunk] = _sawtooth_chunk(
            flat[start : start + chunk], k, c, num, den
        )
    return out.reshape(caps.shape)


def codec_pack(column, dtype: str) -> bytes:
    """One column as contiguous little-endian bytes."""
    return np.ascontiguousarray(np.asarray(column), dtype=dtype).tobytes()


def codec_unpack(
    blob: bytes, dtype: str, count: int, offset: int
) -> np.ndarray:
    """Zero-copy decode of one binary column from the payload blob."""
    return np.frombuffer(blob, dtype=dtype, count=count, offset=offset)


def register_numpy(registry) -> None:
    """Register every numpy-tier kernel on ``registry``."""
    registry.register("energy_wall_bisect", "numpy", energy_wall_bisect)
    registry.register(
        "sawtooth_best_user_bits", "numpy", sawtooth_best_user_bits
    )
    registry.register("codec_pack", "numpy", codec_pack)
    registry.register("codec_unpack", "numpy", codec_unpack)
