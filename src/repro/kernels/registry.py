"""Kernel registry and tiered dispatch.

The three innermost loops of the batch engine — the log-domain
boundary bisection, the fig2a saw-tooth peak search, and the codec
column pack/unpack — live here as *kernels*: named functions over
plain ndarrays and scalars with up to three registered implementations
("tiers") each:

``scalar``
    the pure-Python reference — slow, obvious, the ground truth the
    parity suite checks the other tiers against,
``numpy``
    the vectorised implementation (the code that used to live inline
    at each call site),
``native``
    ``numba``-compiled twins (optional ``repro[native]`` extra); the
    module probing and JIT cache live in :mod:`repro.kernels.native`.

Tier selection is process-wide via ``REPRO_KERNELS``:

========  ==============================================================
``auto``  (default) ``native`` when numba imports cleanly, else ``numpy``
``native``  force native; falls back to ``numpy`` (and counts
            ``kernel.native.unavailable``) when numba is missing
``numpy``   force the vectorised tier
``scalar``  force the reference tier (parity debugging)
========  ==============================================================

Importability is probed exactly once per process and memoized; a
missing or broken numba can therefore never break a run — tier-1 CI
stays dependency-light by construction.  Every dispatch is metered:
``kernel.<name>.calls`` / ``kernel.<name>.ns`` counters and a
``kernel.tier`` gauge (0 scalar / 1 numpy / 2 native) in the process
:class:`~repro.telemetry.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable

from ..errors import ConfigurationError
from ..telemetry import metrics

#: Environment variable selecting the kernel tier for this process.
KERNELS_ENV_VAR = "REPRO_KERNELS"
#: Environment variable pinning the numba on-disk JIT cache directory
#: (exported as ``NUMBA_CACHE_DIR`` before numba is first imported).
CACHE_DIR_ENV_VAR = "REPRO_KERNEL_CACHE_DIR"

TIER_SCALAR = "scalar"
TIER_NUMPY = "numpy"
TIER_NATIVE = "native"
TIER_AUTO = "auto"

#: Real (registrable) tiers, fastest first.
TIERS = (TIER_NATIVE, TIER_NUMPY, TIER_SCALAR)
#: Accepted ``REPRO_KERNELS`` values.
TIER_CHOICES = (TIER_AUTO,) + TIERS

#: Numeric codes for the ``kernel.tier`` gauge.
TIER_CODES = {TIER_SCALAR: 0.0, TIER_NUMPY: 1.0, TIER_NATIVE: 2.0}

#: Per-tier fallback chains: a kernel missing its preferred tier
#: degrades one tier at a time, never silently upgrades.
_FALLBACK = {
    TIER_NATIVE: (TIER_NATIVE, TIER_NUMPY, TIER_SCALAR),
    TIER_NUMPY: (TIER_NUMPY, TIER_SCALAR),
    TIER_SCALAR: (TIER_SCALAR,),
}


def requested_tier() -> str:
    """The tier ``REPRO_KERNELS`` asks for (``auto`` when unset)."""
    value = os.environ.get(KERNELS_ENV_VAR, "").strip().lower() or TIER_AUTO
    if value not in TIER_CHOICES:
        known = ", ".join(TIER_CHOICES)
        raise ConfigurationError(
            f"unknown kernel tier {value!r} in ${KERNELS_ENV_VAR}; "
            f"known: {known}"
        )
    return value


def kernel_cache_dir() -> str | None:
    """The pinned JIT cache directory, if ``REPRO_KERNEL_CACHE_DIR`` is set."""
    value = os.environ.get(CACHE_DIR_ENV_VAR, "").strip()
    return value or None


def pin_cache_dir(path: str) -> str:
    """Pin the JIT cache directory unless one is already pinned.

    Returns the directory that ends up pinned.  Called by the fleet
    executor with a directory next to the store, so every single-job
    worker subprocess it spawns shares one on-disk cache and only the
    first ever pays JIT compilation.
    """
    current = kernel_cache_dir()
    if current is not None:
        return current
    os.environ[CACHE_DIR_ENV_VAR] = path
    return path


class KernelRegistry:
    """Named kernels with per-tier implementations and metered dispatch."""

    def __init__(self) -> None:
        self._impls: dict[str, dict[str, Callable[..., Any]]] = {}
        self._active: str | None = None
        self._native_probed = False
        self._native_error: str | None = None

    # -- registration ------------------------------------------------------

    def register(
        self, name: str, tier: str, fn: Callable[..., Any]
    ) -> None:
        """Register one implementation of one kernel."""
        if tier not in TIERS:
            raise ConfigurationError(
                f"unknown kernel tier {tier!r}; known: {TIERS}"
            )
        self._impls.setdefault(name, {})[tier] = fn

    def names(self) -> list[str]:
        """All registered kernel names, sorted."""
        return sorted(self._impls)

    def tiers_for(self, name: str) -> tuple[str, ...]:
        """Tiers with an implementation registered for ``name``."""
        impls = self._impls.get(name, {})
        return tuple(tier for tier in TIERS if tier in impls)

    # -- tier resolution ---------------------------------------------------

    def native_available(self) -> bool:
        """Whether the native tier imports cleanly (probed once)."""
        if not self._native_probed:
            self._native_probed = True
            try:
                from . import native

                native.register_native(self)
                self._native_error = None
            except Exception as error:  # noqa: BLE001 - any import break
                self._native_error = f"{type(error).__name__}: {error}"
        return self._native_error is None

    @property
    def native_error(self) -> str | None:
        """Why the native tier is unavailable (``None`` when it is)."""
        self.native_available()
        return self._native_error

    def active_tier(self) -> str:
        """The tier this process dispatches to (resolved once)."""
        if self._active is None:
            wanted = requested_tier()
            if wanted == TIER_AUTO:
                self._active = (
                    TIER_NATIVE if self.native_available() else TIER_NUMPY
                )
            elif wanted == TIER_NATIVE and not self.native_available():
                # An explicit native request without numba degrades
                # cleanly — and audibly, via the counter.
                metrics().count("kernel.native.unavailable")
                self._active = TIER_NUMPY
            else:
                self._active = wanted
        return self._active

    def resolve(self, name: str) -> tuple[Callable[..., Any], str]:
        """The implementation and tier one dispatch of ``name`` uses."""
        impls = self._impls.get(name)
        if impls is None:
            known = ", ".join(self.names())
            raise ConfigurationError(
                f"unknown kernel {name!r}; known: {known}"
            )
        for tier in _FALLBACK[self.active_tier()]:
            fn = impls.get(tier)
            if fn is not None:
                return fn, tier
        raise ConfigurationError(
            f"kernel {name!r} has no implementation at or below tier "
            f"{self.active_tier()!r}"
        )

    def reset(self) -> None:
        """Forget the resolved tier and native probe (tests only)."""
        self._active = None
        self._native_probed = False
        self._native_error = None

    # -- dispatch ----------------------------------------------------------

    def call(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Run one kernel on the active tier, metered.

        Counters: ``kernel.<name>.calls`` and ``kernel.<name>.ns``
        (cumulative wall nanoseconds); gauge ``kernel.tier`` carries
        the numeric tier code of the implementation that actually ran.
        """
        fn, tier = self.resolve(name)
        start = time.perf_counter_ns()
        result = fn(*args, **kwargs)
        registry = metrics()
        registry.count(f"kernel.{name}.calls")
        registry.count(
            f"kernel.{name}.ns", time.perf_counter_ns() - start
        )
        registry.gauge("kernel.tier", TIER_CODES[tier])
        return result


#: The process-global registry every call site dispatches through.
_REGISTRY: KernelRegistry | None = None


def default_registry() -> KernelRegistry:
    """This process's kernel registry, built (and populated) lazily."""
    global _REGISTRY
    if _REGISTRY is None:
        registry = KernelRegistry()
        from . import numpy_impl, scalar

        scalar.register_scalar(registry)
        numpy_impl.register_numpy(registry)
        _REGISTRY = registry
    return _REGISTRY


def dispatch(name: str, *args: Any, **kwargs: Any) -> Any:
    """Run a kernel by name on the process-wide registry."""
    return default_registry().call(name, *args, **kwargs)


def active_tier() -> str:
    """The tier this process resolved to (probing native if needed)."""
    return default_registry().active_tier()


def reset_kernels() -> None:
    """Drop the resolved tier so the next dispatch re-reads the env."""
    if _REGISTRY is not None:
        _REGISTRY.reset()
