"""Span recording: timed regions of work with a process-global recorder.

A *span* is one timed region — a job execute, a shard evaluate, a
merge, a store flush — recorded as a plain dict::

    {"name": "job.execute", "cat": "queue", "ts": <wall s>,
     "dur": <s>, "pid": <os pid>, "args": {...}}

The :func:`span` context manager opens and closes spans against this
process's global :class:`SpanRecorder`; workers carry their spans back
to the parent piggybacked on job results (see :func:`mark` /
:func:`delta_since` / :func:`absorb`), the same no-extra-IPC scheme
the metrics registry uses.  Each closed span also feeds a
``span.<name>_s`` histogram in the metrics registry, so latency
rollups exist even when the raw span list is dropped.

The recorder keeps ``started`` and ``closed`` counters so tests can
assert the invariant the ISSUE names: every started span is closed
exactly once, even when the body raises.  A cap (default 100k spans)
bounds memory on million-point sweeps; overflow increments ``dropped``
rather than growing without bound.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Iterator, Mapping, Sequence

from .metrics import metrics, telemetry_enabled

#: Default cap on retained spans per process.
MAX_SPANS = 100_000


class SpanRecorder:
    """Accumulates closed spans, bounded, with open/close accounting."""

    def __init__(self, max_spans: int = MAX_SPANS) -> None:
        self.max_spans = max_spans
        self.spans: list[dict[str, Any]] = []
        self.started = 0
        self.closed = 0
        self.dropped = 0

    def record(self, span_dict: dict[str, Any]) -> None:
        if len(self.spans) < self.max_spans:
            self.spans.append(span_dict)
        else:
            self.dropped += 1

    def reset(self) -> None:
        self.spans.clear()
        self.started = 0
        self.closed = 0
        self.dropped = 0

    # -- worker piggyback --------------------------------------------------

    def mark(self) -> int:
        """Position marker for :meth:`delta_since` (span list length)."""
        return len(self.spans)

    def delta_since(self, mark: int) -> list[dict[str, Any]]:
        """Spans recorded since ``mark`` — what a worker ships back."""
        return self.spans[mark:]

    def absorb(self, spans: Sequence[Mapping[str, Any]]) -> None:
        """Fold spans shipped from a worker into this recorder."""
        for span_dict in spans:
            self.started += 1
            self.closed += 1
            self.record(dict(span_dict))


#: The process-global recorder every :func:`span` call records into.
_RECORDER = SpanRecorder()


def recorder() -> SpanRecorder:
    """This process's global :class:`SpanRecorder`."""
    return _RECORDER


@contextmanager
def span(
    name: str, cat: str = "repro", **args: Any
) -> Iterator[dict[str, Any]]:
    """Record a timed span around the enclosed block.

    Yields the (mutable) span dict so callers can attach result args —
    e.g. record counts — before the block closes.  The span is closed
    exactly once, in a ``finally``, whether or not the body raises.
    """
    if not telemetry_enabled():
        yield {}
        return
    rec = _RECORDER
    rec.started += 1
    span_dict: dict[str, Any] = {
        "name": name,
        "cat": cat,
        "ts": time.time(),
        "dur": 0.0,
        "pid": os.getpid(),
        "args": dict(args),
    }
    start = time.perf_counter()
    try:
        yield span_dict
    finally:
        span_dict["dur"] = time.perf_counter() - start
        rec.closed += 1
        rec.record(span_dict)
        metrics().observe(f"span.{name}_s", span_dict["dur"])
