"""Unified telemetry: metrics, spans, sidecar sink, Chrome trace export.

This package is the observation layer of the campaign pipeline.  It is
deliberately independent of :mod:`repro.runner` — it knows nothing
about jobs or stores, only about three primitive shapes:

* **metrics** (:mod:`~repro.telemetry.metrics`) — process-global
  counters/gauges/histograms with snapshot/delta/merge for
  cross-process aggregation,
* **spans** (:mod:`~repro.telemetry.spans`) — timed regions recorded
  by the ``span()`` context manager,
* **events** — plain dicts fed in by whoever owns an event stream
  (the runner's :class:`~repro.runner.events.EventBus`).

:class:`RunCapture` bundles the per-run glue: it is an event-bus
subscriber that collects the event stream, and its :meth:`~RunCapture.
export` snapshots the global metrics/spans and writes the JSONL
sidecar (:mod:`~repro.telemetry.sink`) and/or the Chrome trace file
(:mod:`~repro.telemetry.trace`) for a finished run.

Everything honours ``REPRO_TELEMETRY=off`` (collection becomes a
no-op); ``REPRO_TRACE=<path>`` asks the CLI to write a trace file.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Any, Mapping

from .metrics import (
    TELEMETRY_ENV_VAR,
    Histogram,
    MetricsRegistry,
    metrics,
    telemetry_enabled,
    telemetry_sidecar_path,
)
from .sink import SIDECAR_SCHEMA, read_sidecar, summarize, write_sidecar
from .spans import MAX_SPANS, SpanRecorder, recorder, span
from .trace import load_trace, trace_events, validate_trace, write_chrome_trace

#: Environment variable naming the Chrome trace file the CLI writes.
TRACE_ENV_VAR = "REPRO_TRACE"

__all__ = [
    "TELEMETRY_ENV_VAR",
    "TRACE_ENV_VAR",
    "SIDECAR_SCHEMA",
    "MAX_SPANS",
    "Histogram",
    "MetricsRegistry",
    "RunCapture",
    "SpanRecorder",
    "load_trace",
    "metrics",
    "new_run_id",
    "read_sidecar",
    "recorder",
    "reset_telemetry",
    "span",
    "summarize",
    "telemetry_enabled",
    "telemetry_sidecar_path",
    "trace_events",
    "validate_trace",
    "write_chrome_trace",
    "write_sidecar",
]


def new_run_id() -> str:
    """A human-sortable run identifier: UTC timestamp + pid."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{os.getpid()}"


def reset_telemetry() -> None:
    """Drop all process-global metrics and spans (fresh run / tests)."""
    metrics().reset()
    recorder().reset()


def _event_dict(event: Any) -> dict[str, Any]:
    if dataclasses.is_dataclass(event) and not isinstance(event, type):
        return dataclasses.asdict(event)
    return dict(event)


class RunCapture:
    """Per-run telemetry collector and exporter.

    Subscribe it to an event stream (it is a plain observer callable),
    then call :meth:`export` after the run to write the sidecar and/or
    Chrome trace from the collected events plus the process-global
    metrics and spans::

        capture = RunCapture()
        run_campaign(campaign, observers=[capture], run_id=capture.run_id)
        capture.export(trace="out.trace.json", sidecar="out.telemetry.jsonl")
    """

    def __init__(self, run_id: str | None = None) -> None:
        self.run_id = run_id or new_run_id()
        self.events: list[dict[str, Any]] = []
        self.parent_pid = os.getpid()

    def __call__(self, event: Any) -> None:
        """Observer entry point: collect one bus event."""
        if telemetry_enabled():
            self.events.append(_event_dict(event))

    def export(
        self,
        *,
        trace: str | None = None,
        sidecar: str | None = None,
        meta: Mapping[str, Any] | None = None,
    ) -> dict[str, str]:
        """Write the requested artifacts; returns ``{kind: path}``."""
        written: dict[str, str] = {}
        spans = recorder().spans
        if sidecar:
            sidecar_meta = {"parent_pid": self.parent_pid}
            if meta:
                sidecar_meta.update(meta)
            write_sidecar(
                sidecar,
                run_id=self.run_id,
                events=self.events,
                spans=spans,
                metrics_snapshot=metrics().snapshot(),
                meta=sidecar_meta,
            )
            written["sidecar"] = sidecar
        if trace:
            trace_meta = {"run_id": self.run_id}
            if meta:
                trace_meta.update(meta)
            write_chrome_trace(
                trace,
                spans,
                self.events,
                parent_pid=self.parent_pid,
                metadata=trace_meta,
            )
            written["trace"] = trace
        return written
