"""Lightweight in-process metrics: counters, gauges, histograms.

No third-party dependencies, no background threads, no sampling — just
three dictionaries of scalars behind a tiny API, cheap enough to leave
on in every hot path the runner owns (store appends, cache lookups,
codec packs, merge flushes):

* **counters** are monotonically increasing floats (``count``),
* **gauges** are last-value-wins floats, with a ``gauge_max`` variant
  that keeps the peak (merge semantics: gauges merge by max, so a
  per-worker peak survives aggregation),
* **histograms** are four-scalar summaries (count / total / min / max)
  fed by ``observe`` or the ``timer`` context manager — enough for
  call-latency rollups without storing samples.

Cross-process aggregation is snapshot-based: a worker process runs its
own process-global registry, takes a :meth:`MetricsRegistry.snapshot`
before a job and a :meth:`MetricsRegistry.delta_since` after, and ships
the delta back piggybacked on the job's result.  The parent
:meth:`MetricsRegistry.merge`\\ s each delta — counters add, gauges
max, histograms fold — so a campaign's metrics aggregate across the
whole worker pool without any extra IPC.

The ``REPRO_TELEMETRY`` environment variable disables collection when
set to ``0``/``off``/``false``/``no`` (any other value — including a
sidecar path, see :mod:`repro.telemetry.sink` — leaves it on).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Iterator, Mapping

#: Environment variable controlling telemetry collection.  ``0`` /
#: ``off`` / ``false`` / ``no`` disable it; a filesystem path names the
#: JSONL sidecar the CLI writes; anything else just means "on".
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY"

_OFF_VALUES = ("0", "off", "false", "no")


def telemetry_enabled() -> bool:
    """Whether telemetry collection is on (default) for this process."""
    value = os.environ.get(TELEMETRY_ENV_VAR, "").strip().lower()
    return value not in _OFF_VALUES or value == ""


def telemetry_sidecar_path() -> str | None:
    """The sidecar path named by ``REPRO_TELEMETRY``, if it names one."""
    value = os.environ.get(TELEMETRY_ENV_VAR, "").strip()
    if not value or value.lower() in _OFF_VALUES:
        return None
    return value


class Histogram:
    """Four-scalar summary of an observed distribution."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    def fold(self, other: Mapping[str, Any]) -> None:
        """Merge another histogram's summary dict into this one."""
        self.count += int(other.get("count", 0))
        self.total += float(other.get("total", 0.0))
        for name, better in (("min", min), ("max", max)):
            value = other.get(name)
            if value is None:
                continue
            current = getattr(self, name)
            setattr(
                self,
                name,
                float(value) if current is None
                else better(current, float(value)),
            )


class MetricsRegistry:
    """A process-local bag of counters, gauges, and histograms.

    All methods are no-ops while telemetry is disabled
    (``REPRO_TELEMETRY=off``), so instrumented hot paths cost one
    environment lookup and nothing else.
    """

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        #: Worker pids whose deltas have been merged in (parent only).
        self.workers: set[int] = set()

    # -- recording ---------------------------------------------------------

    def count(self, name: str, value: float = 1.0) -> None:
        """Increment a monotonic counter."""
        if not telemetry_enabled():
            return
        self._counters[name] = self._counters.get(name, 0.0) + float(value)

    def gauge(self, name: str, value: float) -> None:
        """Set a last-value-wins gauge."""
        if not telemetry_enabled():
            return
        self._gauges[name] = float(value)

    def gauge_max(self, name: str, value: float) -> None:
        """Raise a peak-tracking gauge (keeps the maximum ever seen)."""
        if not telemetry_enabled():
            return
        value = float(value)
        if value > self._gauges.get(name, float("-inf")):
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Feed one sample into a histogram."""
        if not telemetry_enabled():
            return
        self._histograms.setdefault(name, Histogram()).observe(value)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Observe the wall time of the enclosed block, in seconds."""
        if not telemetry_enabled():
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- reading -----------------------------------------------------------

    def counter_value(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def gauge_value(self, name: str) -> float | None:
        return self._gauges.get(name)

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    def snapshot(self) -> dict[str, Any]:
        """A plain-JSON copy of everything currently recorded."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: hist.as_dict()
                for name, hist in self._histograms.items()
            },
            "workers": sorted(self.workers),
        }

    def delta_since(self, snapshot: Mapping[str, Any]) -> dict[str, Any]:
        """What was recorded since ``snapshot`` (counters/hists subtract).

        Gauges are last-value-wins, so the delta simply carries their
        current values.  The result merges cleanly into another
        registry via :meth:`merge` — the worker-to-parent piggyback.
        """
        before_counters = snapshot.get("counters", {})
        counters = {}
        for name, value in self._counters.items():
            diff = value - float(before_counters.get(name, 0.0))
            if diff:
                counters[name] = diff
        before_hists = snapshot.get("histograms", {})
        histograms = {}
        for name, hist in self._histograms.items():
            before = before_hists.get(name)
            if before is None:
                histograms[name] = hist.as_dict()
                continue
            count = hist.count - int(before.get("count", 0))
            if count <= 0:
                continue
            # min/max cannot be un-merged; the delta keeps the current
            # extremes, which only widens the parent's summary.
            histograms[name] = {
                "count": count,
                "total": hist.total - float(before.get("total", 0.0)),
                "min": hist.min,
                "max": hist.max,
            }
        return {
            "counters": counters,
            "gauges": dict(self._gauges),
            "histograms": histograms,
            "workers": sorted(self.workers),
        }

    def merge(
        self, snapshot: Mapping[str, Any], worker_pid: int | None = None
    ) -> None:
        """Fold another registry's snapshot (or delta) into this one.

        Counters add, gauges keep the maximum (so per-worker peaks
        survive), histograms fold their four-scalar summaries.
        """
        if not telemetry_enabled():
            return
        for name, value in snapshot.get("counters", {}).items():
            self._counters[name] = (
                self._counters.get(name, 0.0) + float(value)
            )
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge_max(name, float(value))
        for name, summary in snapshot.get("histograms", {}).items():
            self._histograms.setdefault(name, Histogram()).fold(summary)
        for pid in snapshot.get("workers", []):
            self.workers.add(int(pid))
        if worker_pid is not None:
            self.workers.add(int(worker_pid))

    def reset(self) -> None:
        """Drop everything (tests and fresh CLI runs)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.workers.clear()


#: The process-global registry every instrumented layer records into.
_REGISTRY = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """This process's global :class:`MetricsRegistry`."""
    return _REGISTRY
