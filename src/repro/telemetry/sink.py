"""JSONL telemetry sidecar: one file per run, replayable offline.

The sidecar is the durable form of a run's telemetry — the thing
``repro trace export`` and ``repro telemetry summary`` read back.  It
is line-delimited JSON, one tagged object per line:

* line 1 is the header: ``{"t": "meta", "schema": "repro.telemetry/1",
  "run_id": ..., ...}``,
* ``{"t": "event", ...}`` — one bus event (see
  :mod:`repro.runner.events`),
* ``{"t": "span", ...}`` — one closed span (see
  :mod:`repro.telemetry.spans`),
* ``{"t": "metrics", "snapshot": {...}}`` — the final merged metrics
  registry snapshot (last one wins on read).

Appending plain lines keeps writes cheap and crash losses bounded to
the final line; unknown tags are skipped on read so the schema can
grow without breaking old readers.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping, Sequence

#: Sidecar schema identifier written into the header line.
SIDECAR_SCHEMA = "repro.telemetry/1"


def write_sidecar(
    path: str,
    *,
    run_id: str,
    events: Iterable[Mapping[str, Any]] = (),
    spans: Sequence[Mapping[str, Any]] = (),
    metrics_snapshot: Mapping[str, Any] | None = None,
    meta: Mapping[str, Any] | None = None,
) -> int:
    """Write a full sidecar file; returns the number of lines written."""
    lines = 0
    with open(path, "w", encoding="utf-8") as handle:
        header: dict[str, Any] = {
            "t": "meta",
            "schema": SIDECAR_SCHEMA,
            "run_id": run_id,
        }
        if meta:
            header.update(meta)
        handle.write(json.dumps(header, separators=(",", ":")) + "\n")
        lines += 1
        for event in events:
            record = {"t": "event", **event}
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            lines += 1
        for span_dict in spans:
            record = {"t": "span", **span_dict}
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            lines += 1
        if metrics_snapshot is not None:
            record = {"t": "metrics", "snapshot": dict(metrics_snapshot)}
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            lines += 1
    return lines


def read_sidecar(path: str) -> dict[str, Any]:
    """Parse a sidecar back into ``{meta, events, spans, metrics}``.

    Unknown tags are skipped; a missing metrics line yields an empty
    snapshot.  Raises :class:`ValueError` when the header is missing
    or declares a schema this reader does not speak.
    """
    meta: dict[str, Any] = {}
    events: list[dict[str, Any]] = []
    spans: list[dict[str, Any]] = []
    snapshot: dict[str, Any] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            raw = raw.strip()
            if not raw:
                continue
            record = json.loads(raw)
            tag = record.get("t")
            if lineno == 1:
                if tag != "meta":
                    raise ValueError(
                        f"{path}: first line must be the meta header"
                    )
                schema = record.get("schema")
                if schema != SIDECAR_SCHEMA:
                    raise ValueError(
                        f"{path}: unsupported sidecar schema {schema!r}"
                    )
                meta = {
                    key: value
                    for key, value in record.items()
                    if key != "t"
                }
            elif tag == "event":
                events.append(
                    {k: v for k, v in record.items() if k != "t"}
                )
            elif tag == "span":
                spans.append(
                    {k: v for k, v in record.items() if k != "t"}
                )
            elif tag == "metrics":
                snapshot = dict(record.get("snapshot", {}))
    if not meta:
        raise ValueError(f"{path}: empty sidecar (no meta header)")
    return {
        "meta": meta,
        "events": events,
        "spans": spans,
        "metrics": snapshot,
    }


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1e3:.2f}ms"


#: ``kernel.tier`` gauge codes back to tier names (see
#: :mod:`repro.kernels.registry` — kept in sync by the sink tests).
_KERNEL_TIER_NAMES = {0: "scalar", 1: "numpy", 2: "native"}


def _kernel_rollup(
    counters: Mapping[str, Any], gauges: Mapping[str, Any]
) -> list[str]:
    """The ``kernels:`` section of the summary (empty when unused).

    Folds the ``kernel.<name>.calls`` / ``kernel.<name>.ns`` counter
    pairs into one per-kernel line, decodes the ``kernel.tier`` gauge,
    and appends the warm/cache bookkeeping counters.
    """
    lines: list[str] = []
    tier = gauges.get("kernel.tier")
    if tier is not None:
        name = _KERNEL_TIER_NAMES.get(int(tier), "?")
        lines.append(f"  tier: {name}")
    by_kernel: dict[str, dict[str, float]] = {}
    extras: dict[str, float] = {}
    for name in sorted(counters):
        if not name.startswith("kernel."):
            continue
        stem = name[len("kernel."):]
        bookkeeping = (
            stem == "warm.calls"
            or stem.startswith("cache.")
            or stem.startswith("native.")
        )
        if not bookkeeping and (
            stem.endswith(".calls") or stem.endswith(".ns")
        ):
            kernel, _, field = stem.rpartition(".")
            by_kernel.setdefault(kernel, {})[field] = float(
                counters[name]
            )
        else:
            extras[stem] = float(counters[name])
    for kernel in sorted(by_kernel):
        fields = by_kernel[kernel]
        calls = int(fields.get("calls", 0))
        total_s = fields.get("ns", 0.0) / 1e9
        mean_s = total_s / calls if calls else 0.0
        lines.append(
            f"  {kernel}: {calls} x, total {_fmt_seconds(total_s)}, "
            f"mean {_fmt_seconds(mean_s)}"
        )
    for stem in sorted(extras):
        value = extras[stem]
        shown = int(value) if value.is_integer() else value
        lines.append(f"  {stem}: {shown}")
    return lines


def summarize(data: Mapping[str, Any]) -> str:
    """Human-readable per-phase rollup for ``repro telemetry summary``."""
    meta = data.get("meta", {})
    events = data.get("events", [])
    spans = data.get("spans", [])
    snapshot = data.get("metrics", {})
    lines: list[str] = []
    run_id = meta.get("run_id", "?")
    lines.append(f"run {run_id}")
    workers = snapshot.get("workers", [])
    if workers:
        lines.append(
            f"workers: {len(workers)} "
            f"(pids {', '.join(str(pid) for pid in workers)})"
        )

    if events:
        kinds: dict[str, int] = {}
        for event in events:
            kind = str(event.get("kind", "?"))
            kinds[kind] = kinds.get(kind, 0) + 1
        rollup = ", ".join(
            f"{count} {kind}" for kind, count in sorted(kinds.items())
        )
        lines.append(f"events: {len(events)} ({rollup})")

    if spans:
        by_name: dict[str, tuple[int, float]] = {}
        for span_dict in spans:
            name = str(span_dict.get("name", "?"))
            count, total = by_name.get(name, (0, 0.0))
            by_name[name] = (
                count + 1,
                total + float(span_dict.get("dur", 0.0)),
            )
        lines.append("spans:")
        for name, (count, total) in sorted(
            by_name.items(), key=lambda item: -item[1][1]
        ):
            lines.append(
                f"  {name}: {count} x, total {_fmt_seconds(total)}, "
                f"mean {_fmt_seconds(total / count)}"
            )

    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    kernel_lines = _kernel_rollup(counters, gauges)
    if kernel_lines:
        lines.append("kernels:")
        lines.extend(kernel_lines)

    plain_counters = {
        name: value
        for name, value in counters.items()
        if not name.startswith("kernel.")
    }
    if plain_counters:
        lines.append("counters:")
        for name in sorted(plain_counters):
            value = plain_counters[name]
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"  {name}: {shown}")

    plain_gauges = {
        name: value
        for name, value in gauges.items()
        if not name.startswith("kernel.")
    }
    if plain_gauges:
        lines.append("gauges (max across workers):")
        for name in sorted(plain_gauges):
            value = plain_gauges[name]
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"  {name}: {shown}")

    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("timings:")
        for name in sorted(histograms):
            hist = histograms[name]
            count = int(hist.get("count", 0))
            total = float(hist.get("total", 0.0))
            mean = total / count if count else 0.0
            lines.append(
                f"  {name}: {count} x, total {_fmt_seconds(total)}, "
                f"mean {_fmt_seconds(mean)}, "
                f"min {_fmt_seconds(hist.get('min'))}, "
                f"max {_fmt_seconds(hist.get('max'))}"
            )

    if len(lines) == 1:
        lines.append("no telemetry recorded")
    return "\n".join(lines)
