"""Chrome trace-event export: spans → ``chrome://tracing``/Perfetto.

The exporter maps the runner's process model onto the trace-event JSON
object format (the variant both ``chrome://tracing`` and Perfetto
load):

* the whole run is one trace *process* (the parent's os pid),
* each os pid that recorded spans — parent or pool worker — becomes a
  trace *thread* (``tid``), named ``worker <pid>`` (or ``parent``), so
  a ``--jobs 4`` sweep renders as four lanes of job spans,
* every span becomes a ``ph:"X"`` complete event with microsecond
  ``ts``/``dur`` (``dur`` floored at 1µs so zero-length spans stay
  visible),
* bus events (optional) become ``ph:"i"`` instant events on the lane
  of the pid that emitted them.

:func:`validate_trace` is the loadable-schema check the tests use —
it re-reads the file and asserts the structural invariants the
viewers rely on.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, Mapping, Sequence


def trace_events(
    spans: Sequence[Mapping[str, Any]],
    events: Iterable[Mapping[str, Any]] = (),
    parent_pid: int | None = None,
) -> list[dict[str, Any]]:
    """Build the ``traceEvents`` list from spans and (optional) events."""
    if parent_pid is None:
        parent_pid = os.getpid()
    out: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": parent_pid,
            "tid": 0,
            "args": {"name": "repro campaign"},
        }
    ]
    named_tids: set[int] = set()

    def lane(pid: int) -> int:
        if pid not in named_tids:
            named_tids.add(pid)
            label = "parent" if pid == parent_pid else f"worker {pid}"
            out.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": parent_pid,
                    "tid": pid,
                    "args": {"name": label},
                }
            )
        return pid

    for span_dict in spans:
        pid = int(span_dict.get("pid", parent_pid))
        out.append(
            {
                "ph": "X",
                "name": str(span_dict.get("name", "?")),
                "cat": str(span_dict.get("cat", "repro")),
                "ts": float(span_dict.get("ts", 0.0)) * 1e6,
                "dur": max(1.0, float(span_dict.get("dur", 0.0)) * 1e6),
                "pid": parent_pid,
                "tid": lane(pid),
                "args": dict(span_dict.get("args", {})),
            }
        )
    for event in events:
        pid = int(event.get("pid", parent_pid) or parent_pid)
        out.append(
            {
                "ph": "i",
                "name": f"{event.get('kind', 'event')}:"
                f"{event.get('job_id', '?')}",
                "cat": "events",
                "ts": float(event.get("ts", 0.0)) * 1e6,
                "pid": parent_pid,
                "tid": lane(pid),
                "s": "t",
                "args": {
                    key: event[key]
                    for key in ("attempt", "error", "seq")
                    if event.get(key) is not None
                },
            }
        )
    return out


def write_chrome_trace(
    path: str,
    spans: Sequence[Mapping[str, Any]],
    events: Iterable[Mapping[str, Any]] = (),
    parent_pid: int | None = None,
    metadata: Mapping[str, Any] | None = None,
) -> int:
    """Write a Chrome trace JSON file; returns the event count."""
    payload: dict[str, Any] = {
        "traceEvents": trace_events(spans, events, parent_pid=parent_pid),
        "displayTimeUnit": "ms",
    }
    if metadata:
        payload["metadata"] = dict(metadata)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"))
        handle.write("\n")
    return len(payload["traceEvents"])


def load_trace(path: str) -> dict[str, Any]:
    """Load a trace file written by :func:`write_chrome_trace`."""
    with open(path, "r", encoding="utf-8") as handle:
        loaded = json.load(handle)
    if not isinstance(loaded, dict):
        raise ValueError(f"{path}: trace root must be a JSON object")
    return loaded


def validate_trace(payload: Mapping[str, Any]) -> list[dict[str, Any]]:
    """Assert the structural invariants trace viewers rely on.

    Returns the ``traceEvents`` list on success; raises
    :class:`ValueError` naming the first offending event otherwise.
    """
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace is missing the traceEvents list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: not an object")
        phase = event.get("ph")
        if phase not in ("X", "M", "i", "B", "E"):
            raise ValueError(f"{where}: unknown phase {phase!r}")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"{where}: name must be a string")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                raise ValueError(f"{where}: {field} must be an int")
        if phase == "X":
            for field in ("ts", "dur"):
                if not isinstance(event.get(field), (int, float)):
                    raise ValueError(f"{where}: {field} must be numeric")
            if event["dur"] <= 0:
                raise ValueError(f"{where}: dur must be positive")
    return events
