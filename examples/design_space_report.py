#!/usr/bin/env python3
"""Generate a full design-space report for a custom MEMS device.

Shows the exploration machinery on a device *variant* rather than the
paper's exact prototype: suppose the fab can deliver silicon springs
(1e12 cycles) but probe tips are stuck at 100 write cycles, and the
target application mixes more writes (60%).  Where does the design space
open up, and what walls remain?

The report regenerates, for each studied goal:

* the minimal-required-buffer curve over 32-4096 kbps,
* the dominance regions (the paper's C / E / Lsp / Lpb / X brackets),
* the feasibility walls,

and closes with the energy-for-buffer trade-off table.

Run with::

    python examples/design_space_report.py
"""

from __future__ import annotations

import math

import repro
from repro import units
from repro.analysis.tables import render_series
from repro.core.tradeoff import compare_energy_goals


def report_goal(
    explorer: repro.DesignSpaceExplorer, goal: repro.DesignGoal
) -> None:
    result = explorer.sweep(goal)
    print(f"--- goal {goal.label()} ---")
    rates_kbps = [r / 1000 for r in result.rates_bps]
    required_kb = [
        units.bits_to_kb(b) if math.isfinite(b) else float("inf")
        for b in result.required_buffer_bits
    ]
    energy_kb = [
        units.bits_to_kb(b) if math.isfinite(b) else float("inf")
        for b in result.energy_buffer_bits
    ]
    print(
        render_series(
            "rate (kbps)",
            rates_kbps,
            {
                "required buffer (kB)": required_kb,
                "energy-only buffer (kB)": energy_kb,
            },
            max_rows=12,
        )
    )
    print("regions: ", "  ".join(str(region) for region in result.regions))
    energy_wall = explorer.energy_wall_rate(goal)
    probes_wall = explorer.probes_wall_rate(goal)
    if math.isfinite(energy_wall):
        print(f"energy wall : {units.format_rate(energy_wall)}")
    if math.isfinite(probes_wall):
        print(f"probes wall : {units.format_rate(probes_wall)}")
    print()


def main() -> None:
    # The device variant: silicon springs, fragile probes, write-heavy use.
    device = repro.ibm_mems_prototype(
        springs_duty_cycles=1e12, probe_write_cycles=100
    )
    workload = repro.table1_workload().replace(write_fraction=0.60)
    explorer = repro.DesignSpaceExplorer(
        device, workload, points_per_decade=12
    )

    print("Design-space report")
    print(f"device  : {device.name} (springs 1e12, probes 100 cycles)")
    print(f"workload: {workload.write_fraction:.0%} writes, "
          f"{workload.hours_per_day:g} h/day, "
          f"{workload.best_effort_fraction:.0%} best-effort")
    print()

    for energy_goal in (0.80, 0.70):
        report_goal(
            explorer,
            repro.DesignGoal(
                energy_saving=energy_goal,
                capacity_utilisation=0.88,
                lifetime_years=7.0,
            ),
        )

    # The write-heavy workload moves the probes wall left; quantify it.
    lifetime = repro.LifetimeModel(device, workload)
    base_lifetime = repro.LifetimeModel(device, repro.table1_workload())
    print("probes wall for a 7-year target:")
    print(f"  at 40% writes : "
          f"{units.format_rate(base_lifetime.probes.max_rate_for_lifetime(7.0))}")
    print(f"  at 60% writes : "
          f"{units.format_rate(lifetime.probes.max_rate_for_lifetime(7.0))}")
    print()

    # The headline trade-off on this variant.
    analysis = compare_energy_goals(device, workload)
    print(analysis.summary())


if __name__ == "__main__":
    main()
