#!/usr/bin/env python3
"""Quickstart: the library in five minutes.

Walks the public API end to end on the paper's reference device:

1. build the Table I MEMS device and workload,
2. evaluate the forward models (energy, capacity, lifetime) at one
   operating point,
3. invert them: ask what buffer a design goal needs,
4. cross-check the analytic answer by *running* the streaming pipeline.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro import units

RATE_BPS = 1_024_000.0  # a 1024 kbps video stream


def main() -> None:
    # 1. The modelled device and workload (Table I of the paper).
    device = repro.ibm_mems_prototype()
    workload = repro.table1_workload()
    print(f"device   : {device.name}")
    print(f"transfer : {units.format_rate(device.transfer_rate_bps)}")
    print(f"capacity : {units.format_size(device.capacity_bits)}")
    print()

    # 2. Forward models at a 20 kB buffer.
    buffer_bits = units.kb_to_bits(20)
    energy = repro.EnergyModel(device, workload)
    capacity = repro.CapacityModel(device)
    lifetime = repro.LifetimeModel(device, workload)

    print(f"at B = {units.format_size(buffer_bits)}, rs = "
          f"{units.format_rate(RATE_BPS)}:")
    print(f"  break-even buffer : "
          f"{units.format_size(energy.break_even_buffer(RATE_BPS))}")
    print(f"  per-bit energy    : "
          f"{units.j_per_bit_to_nj_per_bit(energy.per_bit_energy(buffer_bits, RATE_BPS)):.1f} nJ/b")
    print(f"  energy saving     : "
          f"{energy.energy_saving(buffer_bits, RATE_BPS):.1%}")
    print(f"  capacity (Su = B) : {capacity.utilisation(buffer_bits):.1%}")
    print(f"  device lifetime   : "
          f"{lifetime.lifetime_years(buffer_bits, RATE_BPS):.1f} years "
          f"(limited by {lifetime.limiting_component(buffer_bits, RATE_BPS)})")
    print()

    # 3. The inverse question of §IV.C: what buffer does a goal need?
    goal = repro.DesignGoal(
        energy_saving=0.70, capacity_utilisation=0.88, lifetime_years=7.0
    )
    dimensioner = repro.BufferDimensioner(device, workload)
    requirement = dimensioner.dimension(goal, RATE_BPS)
    print(requirement.summary())
    for outcome in requirement.outcomes:
        print(f"  {outcome.constraint.value:4s} needs >= "
              f"{units.format_size(outcome.min_buffer_bits)}")
    print()

    # 4. Verify by running the discrete-event pipeline at that size.
    from repro.streaming import simulate_always_on, simulate_streaming

    buffer = requirement.required_buffer_bits
    duration = 200 * energy.cycle_time(buffer, RATE_BPS)
    shutdown = simulate_streaming(device, buffer, RATE_BPS, duration, workload)
    reference = simulate_always_on(device, buffer, RATE_BPS, duration, workload)
    measured = shutdown.energy_saving_against(reference)
    springs = shutdown.springs_lifetime_years(device, workload)
    print(f"simulated {shutdown.refill_cycles} refill cycles "
          f"({units.format_duration(duration)} of playback):")
    print(f"  measured energy saving   : {measured:.1%}  (goal: "
          f"{goal.energy_saving:.0%})")
    print(f"  implied springs lifetime : {springs:.1f} years  (goal: "
          f"{goal.lifetime_years:g})")
    print(f"  buffer underruns         : {shutdown.underruns}")


if __name__ == "__main__":
    main()
