#!/usr/bin/env python3
"""Simulate variable-bit-rate streaming — beyond the paper's CBR model.

The paper dimensions buffers for constant bit rates; real video is VBR.
This script uses the discrete-event pipeline to ask the question the
closed forms cannot answer: *how much headroom above the CBR-dimensioned
buffer does a bursty stream need before it stops glitching?*

It builds a two-state (calm/action) Markov-modulated VBR stream, then
binary-searches the smallest buffer that plays it underrun-free, and
compares against the mean-rate and peak-rate CBR dimensionings.

Run with::

    python examples/vbr_streaming_sim.py
"""

from __future__ import annotations

import repro
from repro import units
from repro.errors import BufferUnderrunError
from repro.streaming import (
    PipelineConfig,
    StreamingPipeline,
    VBRStream,
    markov_trace,
)

CALM_KBPS = 512
ACTION_KBPS = 2_048
DURATION_S = 180.0


def plays_clean(device, workload, stream, buffer_bits: float) -> bool:
    """True when the stream survives the whole run without underruns."""
    pipeline = StreamingPipeline(
        PipelineConfig(
            device=device,
            buffer_bits=buffer_bits,
            stream=stream,
            workload=workload,
        )
    )
    try:
        report = pipeline.run(DURATION_S)
    except BufferUnderrunError:
        return False
    return report.underruns == 0


def smallest_clean_buffer(device, workload, stream) -> float:
    """Binary search the smallest underrun-free buffer (bits)."""
    low = units.kb_to_bits(0.5)
    high = units.kb_to_bits(256)
    if plays_clean(device, workload, stream, low):
        return low
    assert plays_clean(device, workload, stream, high), "search bracket"
    for _ in range(30):
        mid = (low + high) / 2
        if plays_clean(device, workload, stream, mid):
            high = mid
        else:
            low = mid
    return high


def main() -> None:
    device = repro.ibm_mems_prototype()
    workload = repro.table1_workload()
    energy = repro.EnergyModel(device, workload)

    trace = markov_trace(
        units.kbps_to_bps(CALM_KBPS),
        units.kbps_to_bps(ACTION_KBPS),
        mean_scene_s=8.0,
        total_s=DURATION_S,
        seed=2011,
    )
    stream = VBRStream(trace=trace, write_fraction=0.4)
    mean_rate = trace.mean_rate_bps
    peak_rate = trace.peak_rate_bps

    print(f"VBR stream: calm {CALM_KBPS} kbps / action {ACTION_KBPS} kbps, "
          f"mean {units.format_rate(mean_rate)}")
    print()

    # CBR reference points from the analytic model.
    floor_mean = energy.latency_floor(mean_rate)
    floor_peak = energy.latency_floor(peak_rate)
    print(f"latency floor at the mean rate : {units.format_size(floor_mean)}")
    print(f"latency floor at the peak rate : {units.format_size(floor_peak)}")

    # What the simulation actually needs.
    needed = smallest_clean_buffer(device, workload, stream)
    print(f"smallest underrun-free buffer  : {units.format_size(needed)}")
    print(f"  = {needed / floor_peak:.2f}x the peak-rate latency floor")
    print()

    # Run the final configuration and report.
    pipeline = StreamingPipeline(
        PipelineConfig(
            device=device,
            buffer_bits=needed * 1.25,  # engineering margin
            stream=stream,
            workload=workload,
        )
    )
    report = pipeline.run(DURATION_S)
    print("with a 25% margin on top:")
    print(report.summary())
    print()
    print("takeaway: dimensioning VBR streams against the *peak* rate's "
          "latency floor (not the mean) is what keeps the pipeline "
          "underrun-free; the paper's capacity/lifetime constraints then "
          "dominate far above that floor, exactly as for CBR.")


if __name__ == "__main__":
    main()
