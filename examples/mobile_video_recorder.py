#!/usr/bin/env python3
"""Scenario: dimension the DRAM buffer of a MEMS-backed mobile recorder.

The paper's motivating application (§I): an energy-efficient,
high-capacity mobile streaming system that both plays back and records
video.  A product team has to pick ONE buffer size at design time; this
script walks their decision:

* enumerate candidate quality levels (video bit rates),
* for each, dimension the buffer for the house requirements
  (7-year lifetime, 88% formatted capacity, best feasible energy goal),
* show which requirement drives the cost at each quality level and
  where the design becomes infeasible,
* recommend the buffer that covers every feasible quality level, and
  sanity-check it in simulation against the worst-case stream.

Run with::

    python examples/mobile_video_recorder.py
"""

from __future__ import annotations

import math

import repro
from repro import units
from repro.analysis.tables import format_table

#: Candidate recording qualities for the product.
QUALITY_LEVELS_KBPS = {
    "voice memo": 64,
    "podcast audio": 128,
    "music (AAC)": 256,
    "video call": 512,
    "SD video": 1024,
    "DVD-class video": 2048,
}

#: House requirements: a 7-year product, most of the medium usable.
LIFETIME_YEARS = 7.0
CAPACITY_UTILISATION = 0.88
#: Energy goals to try, most ambitious first.
ENERGY_GOALS = (0.80, 0.70, 0.60, 0.50)


def dimension_for_quality(
    dimensioner: repro.BufferDimensioner, rate_bps: float
) -> tuple[repro.DesignGoal | None, repro.BufferRequirement | None]:
    """Best feasible goal and its requirement at one bit rate."""
    for energy_goal in ENERGY_GOALS:
        goal = repro.DesignGoal(
            energy_saving=energy_goal,
            capacity_utilisation=CAPACITY_UTILISATION,
            lifetime_years=LIFETIME_YEARS,
        )
        requirement = dimensioner.dimension(goal, rate_bps)
        if requirement.feasible:
            return goal, requirement
    return None, None


def main() -> None:
    device = repro.ibm_mems_prototype()
    workload = repro.table1_workload()
    dimensioner = repro.BufferDimensioner(device, workload)

    rows = []
    recommended_bits = 0.0
    for label, kbps in QUALITY_LEVELS_KBPS.items():
        rate = units.kbps_to_bps(kbps)
        goal, requirement = dimension_for_quality(dimensioner, rate)
        if requirement is None:
            rows.append((label, kbps, "-", "-", "infeasible", "-"))
            continue
        rows.append(
            (
                label,
                kbps,
                f"{goal.energy_saving:.0%}",
                units.format_size(requirement.required_buffer_bits),
                requirement.dominant.value,
                f"{requirement.required_buffer_kb:.1f}",
            )
        )
        recommended_bits = max(
            recommended_bits, requirement.required_buffer_bits
        )

    print("Buffer dimensioning per quality level")
    print(
        format_table(
            (
                "quality",
                "rate (kbps)",
                "energy goal",
                "buffer",
                "driven by",
                "kB",
            ),
            rows,
        )
    )
    print()
    print(
        f"recommended buffer (covers all feasible levels): "
        f"{units.format_size(recommended_bits)}"
    )

    # Sanity-check the recommendation on the most demanding stream.
    worst_kbps = max(QUALITY_LEVELS_KBPS.values())
    worst_rate = units.kbps_to_bps(worst_kbps)
    energy = repro.EnergyModel(device, workload)
    from repro.streaming import simulate_always_on, simulate_streaming

    duration = 200 * energy.cycle_time(recommended_bits, worst_rate)
    shutdown = simulate_streaming(
        device, recommended_bits, worst_rate, duration, workload
    )
    reference = simulate_always_on(
        device, recommended_bits, worst_rate, duration, workload
    )
    print()
    print(f"simulation at {worst_kbps} kbps with the recommended buffer:")
    print(f"  underruns      : {shutdown.underruns}")
    print(
        f"  energy saving  : "
        f"{shutdown.energy_saving_against(reference):.1%}"
    )
    print(
        f"  springs life   : "
        f"{shutdown.springs_lifetime_years(device, workload):.1f} years"
    )

    # What would it take to enable DVD-class recording at 80% saving?
    explorer = repro.DesignSpaceExplorer(device, workload)
    wall = explorer.energy_wall_rate(
        repro.DesignGoal(energy_saving=0.80)
    )
    print()
    if math.isfinite(wall):
        print(
            "note: an 80% energy goal walls at "
            f"{units.format_rate(wall)} — qualities above that must "
            "settle for a softer energy target (the paper's §IV.C "
            "trade-off: ~10% of saving buys orders of magnitude of "
            "buffer)."
        )


if __name__ == "__main__":
    main()
