#!/usr/bin/env python3
"""Head-to-head: MEMS storage against a 1.8-inch disk drive (§III.A.1).

Reproduces the paper's central comparison — the break-even streaming
buffer differs by three orders of magnitude — and extends it with the
consequences the paper derives from it:

* the duty-cycle rating the springs must sustain for disk-class lifetime
  (§III.C.1: ~1e8 cycles vs the disk's ~1e5),
* simulated energy behaviour of both devices around their respective
  break-even points.

Run with::

    python examples/disk_vs_mems.py
"""

from __future__ import annotations

import repro
from repro import units
from repro.analysis.tables import format_table
from repro.streaming import simulate_always_on, simulate_streaming

RATE_BPS = 1_024_000.0
PLAYBACK_YEARS_TARGET = 7.0


def main() -> None:
    mems = repro.ibm_mems_prototype()
    disk = repro.disk_18inch()
    workload = repro.table1_workload()

    mems_energy = repro.EnergyModel(mems, workload)
    disk_energy = repro.EnergyModel(disk, workload)

    # --- break-even buffers across the Table I rate grid -----------------
    rows = []
    for rate in repro.TABLE1_RATE_GRID_BPS:
        mems_be = mems_energy.break_even_buffer(rate)
        disk_be = disk_energy.break_even_buffer(rate)
        rows.append(
            (
                rate / 1000,
                units.format_size(mems_be),
                units.format_size(disk_be),
                f"{disk_be / mems_be:,.0f}x",
            )
        )
    print("Break-even streaming buffer")
    print(
        format_table(
            ("rate (kbps)", "MEMS", "1.8-inch disk", "disk/MEMS"), rows
        )
    )
    print()

    # --- the duty-cycle consequence (§III.C.1) ----------------------------
    # Refills per year scale inversely with the buffer, so matching a
    # disk-class lifetime with a 1000x smaller buffer needs a 1000x
    # larger duty-cycle rating.
    workload_seconds = workload.playback_seconds_per_year
    for name, device, model in (
        ("MEMS", mems, mems_energy),
        ("disk", disk, disk_energy),
    ):
        buffer_bits = 2 * model.break_even_buffer(RATE_BPS)
        refills = workload_seconds * RATE_BPS / buffer_bits
        cycles_needed = refills * PLAYBACK_YEARS_TARGET
        print(
            f"{name:5s}: buffer {units.format_size(buffer_bits):>9s} -> "
            f"{refills:,.0f} refills/year -> "
            f"{cycles_needed:.1e} duty cycles for {PLAYBACK_YEARS_TARGET:g} years"
        )
    print()
    print("(the paper: ~1e8 cycles for MEMS vs the ~1e5 rating of the "
          "1.8-inch disk — attainable because MEMS has no rubbing "
          "surfaces and silicon springs fatigue above 1e12 cycles)")
    print()

    # --- simulated energy saving at 2x break-even -------------------------
    rows = []
    for name, device, model in (
        ("MEMS", mems, mems_energy),
        ("disk", disk, disk_energy),
    ):
        buffer_bits = 2 * model.break_even_buffer(RATE_BPS)
        duration = 40 * model.cycle_time(buffer_bits, RATE_BPS)
        bare_workload = workload.replace(best_effort_fraction=0.0)
        shutdown = simulate_streaming(
            device, buffer_bits, RATE_BPS, duration, bare_workload
        )
        always_on = simulate_always_on(
            device, buffer_bits, RATE_BPS, duration, bare_workload
        )
        rows.append(
            (
                name,
                units.format_size(buffer_bits),
                units.format_duration(model.cycle_time(buffer_bits, RATE_BPS)),
                f"{shutdown.energy_saving_against(always_on):.1%}",
                shutdown.refill_cycles,
            )
        )
    print("Simulated at 2x break-even, 1024 kbps (no best-effort)")
    print(
        format_table(
            ("device", "buffer", "cycle", "energy saving", "cycles"), rows
        )
    )
    print()
    print("same policy, same rate: the disk needs megabytes of buffer and "
          "tens-of-seconds cycles for the saving MEMS gets from kilobytes "
          "and sub-second cycles.")


if __name__ == "__main__":
    main()
