#!/usr/bin/env python3
"""Explore the paper's conclusion: what technology actually helps?

The paper closes with "enhancement in probes lifetime is essentially
needed".  This script walks a named technology roadmap (tougher tips,
silicon springs, faster channels, denser media, larger arrays) through
the (E=70%, C=88%, L=7) design goal and shows, for each point, where
the feasibility walls move and what the buffer costs — making the
conclusion (and its fine print) quantitative.

Run with::

    python examples/technology_roadmap.py
"""

from __future__ import annotations

import math

import repro
from repro import units
from repro.analysis.tables import format_table
from repro.core.design_space import DesignSpaceExplorer
from repro.devices.scaling import ROADMAP, scale_table1_device

GOAL = repro.DesignGoal(
    energy_saving=0.70, capacity_utilisation=0.88, lifetime_years=7.0
)
RATE_BPS = 1_024_000.0


def main() -> None:
    workload = repro.table1_workload()
    rows = []
    for point in ROADMAP:
        device = scale_table1_device(point)
        explorer = DesignSpaceExplorer(device, workload, points_per_decade=8)
        requirement = explorer.dimensioner.dimension(GOAL, RATE_BPS)
        probes_wall = explorer.probes_wall_rate(GOAL)
        result = explorer.sweep(GOAL)
        rows.append(
            (
                point.name,
                units.bits_to_gb(device.capacity_bits),
                (
                    f"{probes_wall / 1000:.0f}"
                    if math.isfinite(probes_wall)
                    else "-"
                ),
                (
                    units.format_size(requirement.required_buffer_bits)
                    if requirement.feasible
                    else "infeasible"
                ),
                requirement.dominant.value if requirement.feasible else "X",
                " ".join(result.region_sequence()),
            )
        )
    print(f"Design goal {GOAL.label()} at {units.format_rate(RATE_BPS)}")
    print(
        format_table(
            (
                "technology point",
                "capacity (GB)",
                "probes wall (kbps)",
                "buffer @1024",
                "driven by",
                "regions",
            ),
            rows,
        )
    )
    print()
    print("reading the table:")
    print(" * only probe endurance (or more capacity to spread writes "
          "over) moves the probes wall — the paper's conclusion;")
    print(" * silicon springs cut the buffer to the capacity plateau but "
          "cannot lift the wall;")
    print(" * faster channels shift cost into the capacity constraint "
          "(more sync bits for the same 30 µs window).")


if __name__ == "__main__":
    main()
